package main

import (
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/rpc"
)

// This file is the multi-process topology driver: -mesh lists the
// members of an edged mesh and semload routes every request client-side
// with the same consistent-hash ring the daemons build, keeping explicit
// ownership overrides after moves. -spawn launches the members as child
// edged processes first, which is also what arms -chaos-kill: halfway
// through the run one child is SIGKILLed, the router discovers the death
// through a failed call, recomputes the ring over the survivors and
// retries — a retried request is a rebalance, a failed one is a lost
// request and fails the run.

// meshTopology routes requests across mesh members client-side.
type meshTopology struct {
	addrs    []string
	seed     uint64
	alive    []bool
	ring     *cluster.Ring
	override map[string]int
	clients  []*rpc.Client
	// retries counts transmits that needed rerouting after a member died.
	retries int
}

func newMeshTopology(addrs []string, seed uint64) *meshTopology {
	m := &meshTopology{
		addrs:    addrs,
		seed:     seed,
		alive:    make([]bool, len(addrs)),
		override: make(map[string]int),
		clients:  make([]*rpc.Client, len(addrs)),
	}
	for i := range m.alive {
		m.alive[i] = true
	}
	m.rebuild()
	return m
}

func (m *meshTopology) close() {
	for i, c := range m.clients {
		if c != nil {
			c.Close()
			m.clients[i] = nil
		}
	}
}

// liveMembers returns the indices the router believes alive, sorted —
// the same member list a daemon's mesh.Node ranges over, so move targets
// agree.
func (m *meshTopology) liveMembers() []int {
	members := make([]int, 0, len(m.addrs))
	for i, ok := range m.alive {
		if ok {
			members = append(members, i)
		}
	}
	sort.Ints(members)
	return members
}

func (m *meshTopology) rebuild() {
	m.ring = cluster.NewRingFor(m.liveMembers(), 64, m.seed)
	for u, n := range m.override {
		if !m.alive[n] {
			delete(m.override, u)
		}
	}
}

func (m *meshTopology) owner(user string) int {
	if n, ok := m.override[user]; ok {
		return n
	}
	return m.ring.Node(user)
}

func (m *meshTopology) client(node int) (*rpc.Client, error) {
	if m.clients[node] != nil {
		return m.clients[node], nil
	}
	c, err := rpc.Dial(m.addrs[node])
	if err != nil {
		return nil, err
	}
	m.clients[node] = c
	return c, nil
}

// markDead records a discovered death and re-routes every affected user.
func (m *meshTopology) markDead(node int) {
	if m.clients[node] != nil {
		m.clients[node].Close()
		m.clients[node] = nil
	}
	if m.alive[node] {
		m.alive[node] = false
		m.rebuild()
	}
}

// transmit sends to the user's owner, rerouting over the recomputed ring
// when the owner turns out dead. Exhausting every member is a lost
// request.
func (m *meshTopology) transmit(ctx context.Context, user, text string) (*rpc.Response, error) {
	for attempt := 0; attempt <= len(m.addrs); attempt++ {
		node := m.owner(user)
		cl, err := m.client(node)
		if err != nil {
			m.markDead(node)
			m.retries++
			continue
		}
		resp, err := cl.TransmitContext(ctx, user, text)
		if err != nil {
			m.markDead(node)
			m.retries++
			continue
		}
		if resp.Draining {
			// The member answered only after handing its state off, so the
			// retry at the recomputed owner finds the user already there.
			m.markDead(node)
			m.retries++
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("transmit %s: no live mesh member", user)
}

// move sends the move to the user's serving member and mirrors the
// resulting ownership locally (same target rule as the daemon: live
// members sorted by index, cell modulo their count).
func (m *meshTopology) move(user string, cell int) (*rpc.Response, error) {
	cl, err := m.client(m.owner(user))
	if err != nil {
		return nil, err
	}
	resp, err := cl.Move(user, cell)
	if err != nil {
		return nil, err
	}
	if resp.OK && resp.Handover != nil {
		members := m.liveMembers()
		m.override[user] = members[((cell%len(members))+len(members))%len(members)]
	}
	return resp, nil
}

// survivorOriginFetches sums OriginFetches over every live member except
// skip — the "zero origin re-fetches after a graceful drain" gate reads
// this before and after the SIGTERM.
func (m *meshTopology) survivorOriginFetches(skip int) (int64, error) {
	var total int64
	for i := range m.addrs {
		if i == skip || !m.alive[i] {
			continue
		}
		cl, err := m.client(i)
		if err != nil {
			return 0, err
		}
		st, err := cl.Stats()
		if err != nil {
			return 0, err
		}
		for _, n := range st.Nodes {
			total += n.OriginFetches
		}
	}
	return total, nil
}

// mergedStats merges every live member's counters with Stats.Merge.
func (m *meshTopology) mergedStats() (*rpc.Stats, error) {
	var merged *rpc.Stats
	for i := range m.addrs {
		if !m.alive[i] {
			continue
		}
		cl, err := m.client(i)
		if err != nil {
			return nil, err
		}
		st, err := cl.Stats()
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = st
		} else {
			merged.Merge(st)
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("no live mesh member")
	}
	return merged, nil
}

// parseMeshAddrs splits -mesh into at least two host:port members.
func parseMeshAddrs(mesh string) ([]string, error) {
	parts := strings.Split(mesh, ",")
	addrs := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, ":") {
			return nil, fmt.Errorf("mesh member %q is not a host:port address", p)
		}
		addrs = append(addrs, p)
	}
	if len(addrs) < 2 {
		return nil, fmt.Errorf("-mesh needs at least 2 members, got %q", mesh)
	}
	return addrs, nil
}

// spawnMesh launches one edged child per mesh member and waits until
// every one answers a ping. The returned stop function kills any child
// still running. replicas > 0 is forwarded as -replicas, arming
// hot-model replication on every member.
func spawnMesh(bin string, addrs []string, seed uint64, kbDir string, replicas int) ([]*exec.Cmd, func(), error) {
	peers := strings.Join(addrs, ",")
	children := make([]*exec.Cmd, len(addrs))
	stop := func() {
		for _, c := range children {
			if c != nil && c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}
	for i, addr := range addrs {
		args := []string{
			"-addr", addr,
			"-peers", peers,
			"-mesh-index", strconv.Itoa(i),
			"-seed", strconv.FormatUint(seed, 10),
			"-probe-interval", "100ms",
		}
		if kbDir != "" {
			args = append(args, "-kb", kbDir)
		}
		if replicas > 0 {
			args = append(args, "-replicas", strconv.Itoa(replicas))
		}
		cmd := exec.Command(bin, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, fmt.Errorf("spawn %s: %w", addr, err)
		}
		children[i] = cmd
	}
	// Pretraining at boot can take a while; with -kb members come up fast.
	deadline := time.Now().Add(3 * time.Minute)
	for _, addr := range addrs {
		for {
			cl, err := rpc.Dial(addr)
			if err == nil {
				err = cl.Ping()
				cl.Close()
			}
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				stop()
				return nil, nil, fmt.Errorf("member %s not up after %v: %w", addr, 3*time.Minute, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return children, stop, nil
}

// runMeshMobility is runMobility against a mesh: the same serial seeded
// stream, routed client-side, with an optional chaos kill (SIGKILL) or
// chaos term (SIGTERM, graceful drain) halfway through. The run fails on
// any client-visible error, on a run with no handovers, or on one where
// the cold members never refilled their caches from a neighbor — the
// acceptance gates of the multi-process deployment. Chaos term adds the
// drain gates: the victim must exit cleanly within its drain budget, and
// the survivors must finish the run with zero new origin fetches — every
// model the drained member owned arrived by handoff, not by re-fetching.
func runMeshMobility(topo *meshTopology, children []*exec.Cmd, chaosKill, chaosTerm bool,
	users, requests, cells int, moveRate float64, seed uint64, mix string) error {
	if (chaosKill || chaosTerm) && children == nil {
		return fmt.Errorf("chaos needs -spawn: semload can only signal members it started")
	}
	corp := corpus.Build()
	weights, err := parseMix(corp, mix)
	if err != nil {
		return err
	}
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		sum += w
		cum[i] = sum
	}

	root := mat.NewRNG(seed)
	sched := root.Split()
	gens := make([]*corpus.Generator, users)
	for i := range gens {
		gens[i] = corpus.NewGenerator(corp, root.Split())
	}

	killAt := -1
	victim := 0
	if chaosKill || chaosTerm {
		killAt = requests / 2
		// Kill the member serving the most traffic-relevant slot after
		// member 0 (which holds the warm cache): the highest-index member,
		// so survivors span both a warm and a cold node.
		victim = len(topo.addrs) - 1
	}
	var preOrigin int64

	var (
		digest    uint64
		hist      = metrics.NewLatencyHistogram()
		handovers int
		moves     int
		daemonErr int
	)
	start := time.Now()
	for i := 0; i < requests; i++ {
		if i == killAt {
			if chaosTerm {
				var err error
				if preOrigin, err = topo.survivorOriginFetches(victim); err != nil {
					return fmt.Errorf("pre-drain stats: %w", err)
				}
				fmt.Fprintf(os.Stderr, "semload: chaos: draining member %d (%s) at request %d\n",
					victim, topo.addrs[victim], i)
				// SIGTERM, no Wait: the victim drains while the load keeps
				// flowing; requests it parks answer Draining after handoff.
				if err := children[victim].Process.Signal(syscall.SIGTERM); err != nil {
					return fmt.Errorf("signal member %d: %w", victim, err)
				}
			} else {
				fmt.Fprintf(os.Stderr, "semload: chaos: killing member %d (%s) at request %d\n",
					victim, topo.addrs[victim], i)
				children[victim].Process.Kill()
				children[victim].Wait()
				children[victim] = nil
			}
		}
		u := sched.Intn(users)
		user := fmt.Sprintf("u%03d", u)
		// Mobility pauses once the kill happened: a move issued inside a
		// surviving member's probe window may legitimately fail against the
		// dead peer, and the chaos gate is about transmits, not moves.
		if (killAt < 0 || i < killAt) && sched.Float64() < moveRate {
			cell := sched.Intn(cells)
			resp, err := topo.move(user, cell)
			if err != nil {
				return fmt.Errorf("move %s: %w", user, err)
			}
			if !resp.OK {
				return fmt.Errorf("move %s: daemon error %q", user, resp.Error)
			}
			if resp.Handover == nil {
				return fmt.Errorf("move %s: daemon sent no handover result (version skew?)", user)
			}
			moves++
			if resp.Handover.Moved {
				handovers++
			}
			foldResponse(&digest, "move", user, strconv.Itoa(cell),
				resp.Handover.From, resp.Handover.To,
				strconv.FormatBool(resp.Handover.Moved),
				strconv.FormatInt(resp.Handover.MigratedBytes, 10))
		}
		di := pickDomain(sched, cum)
		msg := gens[u].Message(di, nil)
		reqStart := time.Now()
		resp, err := topo.transmit(context.Background(), user, msg.Text())
		if err != nil {
			return fmt.Errorf("request %d lost: %w", i, err)
		}
		hist.Observe(float64(time.Since(reqStart)) / float64(time.Millisecond))
		if !resp.OK {
			daemonErr++
			foldResponse(&digest, "error", user, resp.Error)
			continue
		}
		foldResponse(&digest, "transmit", user, resp.Restored, resp.SelectedDomain,
			strconv.FormatUint(math.Float64bits(resp.Mismatch), 16),
			strconv.Itoa(resp.PayloadBytes),
			strconv.FormatUint(math.Float64bits(resp.LatencyMs), 16))
	}
	elapsed := time.Since(start)

	var drainOrigin int64
	if chaosTerm {
		// The drained member must exit on its own, cleanly, within its
		// drain budget — a hung drain or a crash-stop fallback fails the run.
		waitCh := make(chan error, 1)
		go func() { waitCh <- children[victim].Wait() }()
		select {
		case err := <-waitCh:
			if err != nil {
				return fmt.Errorf("drained member %d exited abnormally: %w", victim, err)
			}
		case <-time.After(60 * time.Second):
			return fmt.Errorf("drained member %d did not exit within 60s", victim)
		}
		children[victim] = nil
		topo.markDead(victim)
		post, err := topo.survivorOriginFetches(victim)
		if err != nil {
			return fmt.Errorf("post-drain stats: %w", err)
		}
		drainOrigin = post - preOrigin
		fmt.Fprintf(os.Stderr, "semload: chaos: member %d drained cleanly, survivor origin fetches +%d\n",
			victim, drainOrigin)
	}

	fmt.Printf("requests : %d ok, %d daemon errors, %d rerouted, %d users (serial), %.2fs\n",
		requests-daemonErr, daemonErr, topo.retries, users, elapsed.Seconds())
	fmt.Printf("rate     : %.1f req/s (closed loop)\n", float64(requests)/elapsed.Seconds())
	fmt.Printf("latency  : mean %.2f ms  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
		hist.Mean(), hist.P(50), hist.P(95), hist.P(99))
	fmt.Printf("mobility : %d moves, %d handovers, %d cells, rate %.2f\n", moves, handovers, cells, moveRate)
	fmt.Printf("digest   : %016x\n", digest)

	st, err := topo.mergedStats()
	if err != nil {
		return fmt.Errorf("merged stats: %w", err)
	}
	var neighborHits int64
	for _, n := range st.Nodes {
		neighborHits += n.NeighborHits
	}
	fmt.Printf("daemon   : %d messages (live members), hit %.1f%%\n", st.Messages, 100*st.SenderHitRate)
	fmt.Printf("mesh     : %d handovers, %d bytes migrated, %d neighbor cache hits\n",
		st.Handovers, st.MigratedBytes, neighborHits)
	for _, n := range st.Nodes {
		fmt.Printf("  %-8s: %d users, hit %.1f%%, %d models, handover in/out %d/%d, neighbor hit/served %d/%d, origin %d\n",
			n.Name, n.Users, 100*n.HitRate, n.CachedModels,
			n.HandoversIn, n.HandoversOut, n.NeighborHits, n.NeighborServed, n.OriginFetches)
	}

	// Acceptance gates (non-zero exit on violation, for CI).
	if daemonErr > 0 {
		return fmt.Errorf("%d client-visible errors after rebalance", daemonErr)
	}
	if handovers == 0 {
		return fmt.Errorf("run produced no handovers (moveRate %.2f too low or mesh not rebalancing)", moveRate)
	}
	if neighborHits == 0 {
		return fmt.Errorf("no neighbor cache fetches: cold members never refilled cooperatively")
	}
	if (chaosKill || chaosTerm) && topo.retries == 0 {
		return fmt.Errorf("chaos was invisible: no request was ever rerouted")
	}
	if chaosTerm && drainOrigin != 0 {
		return fmt.Errorf("graceful drain lost models: survivors paid %d origin re-fetches", drainOrigin)
	}
	return nil
}
