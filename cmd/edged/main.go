// Command edged runs a semantic edge-server daemon: it boots the full
// two-edge semantic communication system (general models pretrained at
// startup) and serves transmit/stats requests over a length-prefixed JSON
// TCP protocol (see internal/rpc).
//
// Connections dispatch directly into the concurrent core.System: requests
// from different users run in parallel, bounded by the -max-inflight gate;
// requests from one user serialize inside the system. Requests that queue
// at the gate longer than -shed-after (or their own deadline hint) are
// shed with an error instead of served late.
//
// With -batch-window > 0 concurrent transmits are dynamically batched:
// in-flight requests sharing a codec run as one fused GEMM pass per
// layer, bit-identical per request to solo serving (see
// internal/core/batch.go).
//
// With -nodes N the sender side becomes an N-node edge cluster inside
// this one process: users are routed to nodes by consistent hashing, the
// "move" op relocates a user to a radio cell (handing their personalized
// models over when the serving node changes), nodes resolve cache misses
// from their neighbors before paying the cloud origin, and "stats"
// reports per-node counters.
//
// With -pprof addr a net/http/pprof endpoint runs on a side port; adding
// -profile-contention also records mutex and block profiles there
// (runtime.SetMutexProfileFraction/SetBlockProfileRate), which is how
// serve-path lock contention — e.g. the channel-stage lock the pooled
// PerUserNoise path removed — is measured under live load.
//
// With -peers a,b,c -mesh-index i this process is instead member i of a
// multi-process mesh: independent edged processes that cooperate over
// the v2 wire protocol (liveness probes, cooperative model fetch,
// cross-process handover) and together reproduce the in-process cluster
// bit for bit. See internal/mesh.
//
// Usage:
//
//	edged [-addr :7060] [-selector sticky] [-snr 12] [-seed 1] [-max-inflight 16]
//	edged -nodes 3 ...
//	edged -addr :7060 -peers host0:7060,host1:7060,host2:7060 -mesh-index 0 ...
//
// All daemon logic lives in internal/edged; this shell parses flags and
// wires signals.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/edged"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("edged: %v", err)
	}
}

func run() error {
	cfg := edged.FromFlags(flag.CommandLine)
	flag.Parse()
	d, err := edged.New(*cfg)
	if err != nil {
		return err
	}
	if err := d.Listen(); err != nil {
		return err
	}
	// First SIGINT/SIGTERM starts a graceful drain (bounded by
	// -drain-timeout); a second one during a stuck drain forces an
	// immediate crash-stop instead of being dropped on the floor — the
	// channel holds two signals so the force path can never be missed.
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	drainStarted := make(chan struct{})
	drainDone := make(chan struct{})
	go func() {
		<-sigCh
		log.Print("edged: shutting down (signal again to force)")
		close(drainStarted)
		go func() {
			defer close(drainDone)
			if err := d.Drain(); err != nil {
				log.Printf("edged: drain: %v", err)
			}
		}()
		<-sigCh
		log.Print("edged: second signal, forcing shutdown")
		d.Kill()
		os.Exit(1)
	}()
	err = d.Serve()
	// Serve returns once the listener closes, which mid-drain happens
	// before the handoff completes; wait the drain out so the process
	// exits with every owned model and user safely pushed.
	select {
	case <-drainStarted:
		<-drainDone
	default:
	}
	return err
}
