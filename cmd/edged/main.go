// Command edged runs a semantic edge-server daemon: it boots the full
// two-edge semantic communication system (general models pretrained at
// startup) and serves transmit/stats requests over a length-prefixed JSON
// TCP protocol (see internal/rpc).
//
// Connections dispatch directly into the concurrent core.System: requests
// from different users run in parallel, bounded by the -max-inflight gate;
// requests from one user serialize inside the system. Requests that queue
// at the gate longer than -shed-after (or their own deadline hint) are
// shed with an error instead of served late.
//
// With -batch-window > 0 concurrent transmits are dynamically batched:
// in-flight requests sharing a codec run as one fused GEMM pass per
// layer, bit-identical per request to solo serving (see
// internal/core/batch.go).
//
// With -nodes N the sender side becomes an N-node edge cluster: users are
// routed to nodes by consistent hashing, the "move" op relocates a user
// to a radio cell (handing their personalized models over when the
// serving node changes), nodes resolve cache misses from their neighbors
// before paying the cloud origin, and "stats" reports per-node counters.
//
// Usage:
//
//	edged [-addr :7060] [-selector sticky] [-snr 12] [-seed 1] [-max-inflight 16]
//	edged -nodes 3 ...
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers for -pprof
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/semantic"
	"repro/internal/text"
)

// loadKB loads one pretrained codec per corpus domain from dir (files
// written by cmd/semkb), in domain order.
func loadKB(dir string) ([]*semantic.Codec, error) {
	corp := corpus.Build()
	out := make([]*semantic.Codec, len(corp.Domains))
	for i, d := range corp.Domains {
		path := filepath.Join(dir, d.Name+".kbm")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("edged: %w (run `semkb -pretrain -out %s` first)", err, dir)
		}
		codec, err := semantic.ReadCodec(f, corp)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("edged: %s: %w", path, err)
		}
		if codec.Domain().Name != d.Name {
			return nil, fmt.Errorf("edged: %s holds domain %q, want %q", path, codec.Domain().Name, d.Name)
		}
		out[i] = codec
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("edged: %v", err)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":7060", "listen address")
		selector    = flag.String("selector", "sticky", "model-selection policy (static|naivebayes|sticky|qlearn|ucb)")
		snr         = flag.Float64("snr", 12, "channel SNR in dB")
		seed        = flag.Uint64("seed", 1, "deterministic seed")
		kbDir       = flag.String("kb", "", "directory of pretrained .kbm models (see cmd/semkb); empty pretrains at startup")
		nodes       = flag.Int("nodes", 0, "cluster mode: number of sender edge nodes (0/1 = classic single sender)")
		pprofAddr   = flag.String("pprof", "", "expose net/http/pprof on this address (e.g. localhost:6060); empty disables")
		workers     = flag.Int("workers", 0, "parallel workers for pretraining and codec kernels (0 = GOMAXPROCS)")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently served transmits (0 = 2x GOMAXPROCS, <0 = unlimited)")
		idleTimeout = flag.Duration("idle-timeout", 5*time.Minute, "per-connection read deadline; 0 disables")
		writeFlag   = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline; 0 disables")
		batchWindow = flag.Duration("batch-window", 0, "cross-request batching window (e.g. 50us); 0 disables batching")
		batchTokens = flag.Int("batch-max-tokens", 0, "flush a collecting batch at this many tokens (0 = default budget)")
		shedAfter   = flag.Duration("shed-after", 0, "shed transmits queued at the -max-inflight gate longer than this; 0 = only shed on client deadlines")
		tier        = flag.String("tier", "f64", "serving kernel tier (f64|f32|int8); f64 is bit-exact, f32/int8 trade bounded accuracy for speed")
	)
	flag.Parse()
	if *workers > 0 {
		mat.SetParallelism(*workers)
	}
	if *pprofAddr != "" {
		// The pprof mux registers on http.DefaultServeMux via the blank
		// import; serving it on a side port lets `go tool pprof` attach to
		// a live daemon and profile serving hotspots under real load.
		go func() {
			log.Printf("edged: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("edged: pprof server: %v", err)
			}
		}()
	}

	cfg := core.Config{
		Selector:       *selector,
		SNRdB:          *snr,
		PinGeneral:     true,
		Seed:           *seed,
		Nodes:          *nodes,
		BatchWindow:    *batchWindow,
		BatchMaxTokens: *batchTokens,
		Tier:           *tier,
	}
	start := time.Now()
	if *kbDir != "" {
		log.Printf("edged: loading pretrained models from %s...", *kbDir)
		pretrained, err := loadKB(*kbDir)
		if err != nil {
			return err
		}
		cfg.Pretrained = pretrained
	} else {
		log.Printf("edged: pretraining general models (selector=%s, snr=%.1f dB)...", *selector, *snr)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	// In cluster mode only node 0 (= sys.Sender) is warmed: the other
	// nodes pull models cooperatively from their neighbors on first miss,
	// which is exactly the behavior the cluster exists to show.
	if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
		return err
	}
	if _, err := sys.Receiver.Prefetch(sys.Corpus.Names()); err != nil {
		return err
	}
	if sys.Cluster != nil {
		log.Printf("edged: cluster mode, %d nodes (node-0 warm, peers cold)", sys.Cluster.NumNodes())
	}
	log.Printf("edged: ready in %v (domains: %v)", time.Since(start).Round(time.Millisecond), sys.Corpus.Names())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("edged: listening on %s", ln.Addr())

	if *batchWindow > 0 {
		log.Printf("edged: cross-request batching on (window %v)", *batchWindow)
	}
	srv := newServer(sys, *maxInflight)
	srv.idleTimeout = *idleTimeout
	srv.writeTimeout = *writeFlag
	srv.shedAfter = *shedAfter
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("edged: shutting down")
		ln.Close()
	}()
	return srv.serve(ln)
}

// server dispatches requests straight into the concurrent core.System; no
// global serialization. A bounded gate caps concurrently served transmits
// so load spikes queue at the door instead of oversubscribing the host.
type server struct {
	sys       *core.System
	messages  atomic.Int64
	inflight  atomic.Int64
	shed      atomic.Int64
	gate      chan struct{} // nil = unlimited
	latency   *metrics.Histogram
	queueWait *metrics.Histogram

	idleTimeout  time.Duration // read deadline between requests
	writeTimeout time.Duration // deadline per response write
	shedAfter    time.Duration // server-side admission-queue patience; 0 = none
}

// newServer wraps sys. maxInflight 0 selects 2x GOMAXPROCS; negative
// disables the gate.
func newServer(sys *core.System, maxInflight int) *server {
	if maxInflight == 0 {
		maxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	s := &server{
		sys:       sys,
		latency:   metrics.NewLatencyHistogram(),
		queueWait: metrics.NewLatencyHistogram(),
	}
	if maxInflight > 0 {
		s.gate = make(chan struct{}, maxInflight)
	}
	return s
}

// serve accepts connections until the listener closes, then drains the
// in-flight handlers.
func (s *server) serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
}

// handle serves one client connection until EOF or a missed deadline: a
// stalled peer trips the read deadline instead of pinning the goroutine
// forever.
func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		if s.idleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.idleTimeout)); err != nil {
				return
			}
		}
		req, err := rpc.ReadRequest(conn)
		if err != nil {
			if err != io.EOF {
				log.Printf("edged: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.dispatch(req)
		if s.writeTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
				return
			}
		}
		if err := rpc.Write(conn, resp); err != nil {
			log.Printf("edged: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// dispatch routes one request.
func (s *server) dispatch(req *rpc.Request) *rpc.Response {
	switch req.Op {
	case rpc.OpPing:
		return &rpc.Response{OK: true}
	case rpc.OpStats:
		return &rpc.Response{OK: true, Stats: s.stats()}
	case rpc.OpTransmit:
		return s.transmit(req)
	case rpc.OpMove:
		return s.move(req)
	default:
		return &rpc.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// stats snapshots the daemon counters; in cluster mode the sender-side
// numbers aggregate every node and per-node detail rides along.
func (s *server) stats() *rpc.Stats {
	serve := &rpc.ServeStats{
		InFlight:       int(s.inflight.Load()),
		LatencyP50Ms:   s.latency.P(50),
		LatencyP95Ms:   s.latency.P(95),
		LatencyP99Ms:   s.latency.P(99),
		QueueWaitP50Ms: s.queueWait.P(50),
		QueueWaitP95Ms: s.queueWait.P(95),
		QueueWaitP99Ms: s.queueWait.P(99),
		Shed:           s.shed.Load(),
	}
	bs := s.sys.BatchStats()
	serve.Batches = bs.Batches
	serve.BatchedRequests = bs.BatchedRequests
	serve.BatchOccupancy = bs.Occupancy
	st := &rpc.Stats{
		Messages:  int(s.messages.Load()),
		SyncBytes: s.sys.SyncBytes(),
		SyncCount: s.sys.SyncCount(),
		Serve:     serve,
	}
	if s.sys.Cluster == nil {
		cs := s.sys.Sender.CacheStats()
		st.SenderHitRate = cs.HitRate()
		st.CachedModels = s.sys.Sender.Cache().Len()
		st.CacheUsedBytes = s.sys.Sender.Cache().Used()
		return st
	}
	cl := s.sys.Cluster.Stats()
	st.Handovers = cl.Handovers
	st.MigratedBytes = cl.MigratedBytes
	var hits, misses uint64
	st.Nodes = make([]rpc.NodeStats, len(cl.Nodes))
	for i, n := range cl.Nodes {
		hits += n.Cache.Hits
		misses += n.Cache.Misses
		st.CachedModels += n.CachedModels
		st.CacheUsedBytes += n.CacheUsedBytes
		st.Nodes[i] = rpc.NodeStats{
			Name:           n.Name,
			Users:          n.Users,
			HitRate:        n.Cache.HitRate(),
			CachedModels:   n.CachedModels,
			CacheUsedBytes: n.CacheUsedBytes,
			HandoversIn:    n.HandoversIn,
			HandoversOut:   n.HandoversOut,
			NeighborHits:   n.NeighborHits,
			NeighborServed: n.NeighborServed,
			OriginFetches:  n.OriginFetches,
		}
	}
	if total := hits + misses; total > 0 {
		st.SenderHitRate = float64(hits) / float64(total)
	}
	return st
}

// move serves one OpMove: attach the user to a cell, handing their
// individual models over when the serving node changes.
func (s *server) move(req *rpc.Request) *rpc.Response {
	if req.User == "" {
		return &rpc.Response{Error: "move requires a user"}
	}
	res, err := s.sys.MoveUser(req.User, req.Cell)
	if err != nil {
		return &rpc.Response{Error: err.Error()}
	}
	return &rpc.Response{OK: true, Handover: &rpc.Handover{
		From:          s.sys.Cluster.Node(res.From).Name(),
		To:            s.sys.Cluster.Node(res.To).Name(),
		Moved:         res.Moved,
		Models:        res.Models,
		MigratedBytes: res.Bytes,
		LatencyMs:     float64(res.Latency) / float64(time.Millisecond),
	}}
}

// shedLimit derives the admission-queue patience for one request: the
// tighter of the client's deadline hint and the server's -shed-after
// policy. Zero means wait indefinitely.
func (s *server) shedLimit(deadlineMs float64) time.Duration {
	limit := s.shedAfter
	if deadlineMs > 0 {
		d := time.Duration(deadlineMs * float64(time.Millisecond))
		if limit <= 0 || d < limit {
			limit = d
		}
	}
	return limit
}

// admit claims a slot at the -max-inflight gate, observing queue wait. A
// request that cannot be admitted within its shed limit is rejected with
// a Shed response instead of queueing unboundedly: under saturation the
// daemon degrades by refusing late work, not by serving everything late.
func (s *server) admit(req *rpc.Request) *rpc.Response {
	select {
	case s.gate <- struct{}{}:
		s.queueWait.Observe(0)
		return nil
	default:
	}
	start := time.Now()
	if limit := s.shedLimit(req.DeadlineMs); limit > 0 {
		timer := time.NewTimer(limit)
		select {
		case s.gate <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			s.shed.Add(1)
			return &rpc.Response{
				Shed:  true,
				Error: fmt.Sprintf("shed: queued %v at admission gate", limit),
			}
		}
	} else {
		s.gate <- struct{}{}
	}
	s.queueWait.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return nil
}

// transmit serves one message through the pipeline, metering service time.
func (s *server) transmit(req *rpc.Request) *rpc.Response {
	user := req.User
	if user == "" {
		user = "anonymous"
	}
	words := text.Tokenize(req.Text)
	if len(words) == 0 {
		return &rpc.Response{Error: "empty message"}
	}
	if s.gate != nil {
		if shed := s.admit(req); shed != nil {
			return shed
		}
		defer func() { <-s.gate }()
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()
	res, err := s.sys.TransmitText(user, words)
	if err != nil {
		return &rpc.Response{Error: err.Error()}
	}
	s.latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	s.messages.Add(1)
	return &rpc.Response{
		OK:             true,
		Restored:       text.Join(res.RestoredWords),
		SelectedDomain: s.sys.Corpus.Domains[res.SelectedDomain].Name,
		Mismatch:       res.Mismatch,
		PayloadBytes:   res.PayloadBytes,
		LatencyMs:      float64(res.Latency) / float64(time.Millisecond),
		CacheHit:       res.EncCacheHit,
		Individual:     res.UsedIndividual,
		UpdateFired:    res.UpdateFired,
	}
}
