// Command edged runs a semantic edge-server daemon: it boots the full
// two-edge semantic communication system (general models pretrained at
// startup) and serves transmit/stats requests over a length-prefixed JSON
// TCP protocol (see internal/rpc).
//
// Usage:
//
//	edged [-addr :7060] [-selector sticky] [-snr 12] [-seed 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/rpc"
	"repro/internal/semantic"
	"repro/internal/text"
)

// loadKB loads one pretrained codec per corpus domain from dir (files
// written by cmd/semkb), in domain order.
func loadKB(dir string) ([]*semantic.Codec, error) {
	corp := corpus.Build()
	out := make([]*semantic.Codec, len(corp.Domains))
	for i, d := range corp.Domains {
		path := filepath.Join(dir, d.Name+".kbm")
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("edged: %w (run `semkb -pretrain -out %s` first)", err, dir)
		}
		codec, err := semantic.ReadCodec(f, corp)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("edged: %s: %w", path, err)
		}
		if codec.Domain().Name != d.Name {
			return nil, fmt.Errorf("edged: %s holds domain %q, want %q", path, codec.Domain().Name, d.Name)
		}
		out[i] = codec
	}
	return out, nil
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("edged: %v", err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":7060", "listen address")
		selector = flag.String("selector", "sticky", "model-selection policy (static|naivebayes|sticky|qlearn|ucb)")
		snr      = flag.Float64("snr", 12, "channel SNR in dB")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		kbDir    = flag.String("kb", "", "directory of pretrained .kbm models (see cmd/semkb); empty pretrains at startup")
		workers  = flag.Int("workers", 0, "parallel workers for pretraining and codec kernels (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *workers > 0 {
		mat.SetParallelism(*workers)
	}

	cfg := core.Config{
		Selector:   *selector,
		SNRdB:      *snr,
		PinGeneral: true,
		Seed:       *seed,
	}
	start := time.Now()
	if *kbDir != "" {
		log.Printf("edged: loading pretrained models from %s...", *kbDir)
		pretrained, err := loadKB(*kbDir)
		if err != nil {
			return err
		}
		cfg.Pretrained = pretrained
	} else {
		log.Printf("edged: pretraining general models (selector=%s, snr=%.1f dB)...", *selector, *snr)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
		return err
	}
	if _, err := sys.Receiver.Prefetch(sys.Corpus.Names()); err != nil {
		return err
	}
	log.Printf("edged: ready in %v (domains: %v)", time.Since(start).Round(time.Millisecond), sys.Corpus.Names())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("edged: listening on %s", ln.Addr())

	srv := &server{sys: sys}
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("edged: shutting down")
		ln.Close()
	}()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				break
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.handle(conn)
		}()
	}
	wg.Wait()
	return nil
}

// server serializes system access: the core pipeline is single-writer by
// design (per-user selection state, update process).
type server struct {
	mu       sync.Mutex
	sys      *core.System
	messages int
}

// handle serves one client connection until EOF.
func (s *server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := rpc.ReadRequest(conn)
		if err != nil {
			if err != io.EOF {
				log.Printf("edged: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := rpc.Write(conn, resp); err != nil {
			log.Printf("edged: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// dispatch routes one request.
func (s *server) dispatch(req *rpc.Request) *rpc.Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch req.Op {
	case rpc.OpPing:
		return &rpc.Response{OK: true}
	case rpc.OpStats:
		st := s.sys.Sender.CacheStats()
		return &rpc.Response{OK: true, Stats: &rpc.Stats{
			Messages:       s.messages,
			SenderHitRate:  st.HitRate(),
			SyncBytes:      s.sys.SyncBytes(),
			SyncCount:      s.sys.SyncCount(),
			CachedModels:   s.sys.Sender.Cache().Len(),
			CacheUsedBytes: s.sys.Sender.Cache().Used(),
		}}
	case rpc.OpTransmit:
		user := req.User
		if user == "" {
			user = "anonymous"
		}
		words := text.Tokenize(req.Text)
		if len(words) == 0 {
			return &rpc.Response{Error: "empty message"}
		}
		res, err := s.sys.TransmitText(user, words)
		if err != nil {
			return &rpc.Response{Error: err.Error()}
		}
		s.messages++
		return &rpc.Response{
			OK:             true,
			Restored:       text.Join(res.RestoredWords),
			SelectedDomain: s.sys.Corpus.Domains[res.SelectedDomain].Name,
			Mismatch:       res.Mismatch,
			PayloadBytes:   res.PayloadBytes,
			LatencyMs:      float64(res.Latency) / float64(time.Millisecond),
			CacheHit:       res.EncCacheHit,
			Individual:     res.UsedIndividual,
			UpdateFired:    res.UpdateFired,
		}
	default:
		return &rpc.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}
