package main

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/rpc"
	"repro/internal/semantic"
	"repro/internal/text"
)

var (
	soakOnce     sync.Once
	soakGenerals []*semantic.Codec
)

// soakPretrained trains one small set of general codecs shared by every
// soak/replay system in this file: identical weights are what make the
// served-versus-direct comparison meaningful.
func soakPretrained(t *testing.T) []*semantic.Codec {
	t.Helper()
	soakOnce.Do(func() {
		soakGenerals = semantic.PretrainAll(corpus.Build(), semantic.Config{
			EmbedDim: 12, FeatureDim: 6, HiddenDim: 16,
			Epochs: 2, Sentences: 300, Seed: 11,
		})
	})
	return soakGenerals
}

// soakConfig is the system configuration under soak: sticky selection with
// a small update threshold so fine-tuning and decoder syncs happen under
// concurrent fire.
func soakConfig(t *testing.T) core.Config {
	return core.Config{
		Selector:        core.SelectorSticky,
		PinGeneral:      true,
		BufferThreshold: 8,
		Seed:            11,
		Pretrained:      soakPretrained(t),
	}
}

// startServer boots an in-process daemon on a loopback port and returns
// its address plus a shutdown func that joins the serve loop.
func startServer(t *testing.T, srv *server) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(ln) }()
	return ln.Addr().String(), func() {
		ln.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	}
}

// TestSoakConcurrentClients hammers a started daemon with 32 concurrent
// sticky connections across distinct users and checks every response plus
// the exact final counter state.
func TestSoakConcurrentClients(t *testing.T) {
	sys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	const clients, perClient = 32, 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			user := fmt.Sprintf("soak%02d", c)
			gen := corpus.NewGenerator(sys.Corpus, mat.NewRNG(uint64(2000+c)))
			for i := 0; i < perClient; i++ {
				msg := gen.Message(c%len(sys.Corpus.Domains), nil)
				if err := rpc.Write(conn, &rpc.Request{Op: rpc.OpTransmit, User: user, Text: msg.Text()}); err != nil {
					errCh <- fmt.Errorf("%s: %w", user, err)
					return
				}
				resp, err := rpc.ReadResponse(conn)
				if err != nil {
					errCh <- fmt.Errorf("%s: %w", user, err)
					return
				}
				if !resp.OK {
					errCh <- fmt.Errorf("%s message %d: daemon error %q", user, i, resp.Error)
					return
				}
				if resp.Restored == "" || resp.PayloadBytes <= 0 || resp.LatencyMs <= 0 {
					errCh <- fmt.Errorf("%s message %d: implausible response %+v", user, i, resp)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := rpc.Write(conn, &rpc.Request{Op: rpc.OpStats}); err != nil {
		t.Fatal(err)
	}
	resp, err := rpc.ReadResponse(conn)
	if err != nil || !resp.OK || resp.Stats == nil {
		t.Fatalf("stats failed: %+v, %v", resp, err)
	}
	st := resp.Stats
	if st.Messages != clients*perClient {
		t.Fatalf("messages = %d, want exactly %d", st.Messages, clients*perClient)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight gauge stuck at %d after drain", st.InFlight)
	}
	if st.LatencyP50Ms <= 0 || st.LatencyP99Ms < st.LatencyP50Ms {
		t.Fatalf("latency percentiles implausible: %+v", st)
	}
	if st.SyncCount <= 0 || st.SyncBytes <= 0 {
		t.Fatalf("no decoder updates under soak: %+v", st)
	}
	if st.SenderHitRate <= 0 {
		t.Fatalf("sender cache never hit: %+v", st)
	}
}

// TestServedMatchesDirectSerialReplay replays one user's message sequence
// through a served daemon and through a direct identically-seeded System,
// and requires bit-identical results field by field — the serve path must
// add no behavior.
func TestServedMatchesDirectSerialReplay(t *testing.T) {
	direct, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	servedSys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(servedSys, 0)
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	gen := corpus.NewGenerator(direct.Corpus, mat.NewRNG(77))
	for i := 0; i < 40; i++ {
		words := gen.Message(i%len(direct.Corpus.Domains), nil).Words
		want, err := direct.TransmitText("replay", words)
		if err != nil {
			t.Fatal(err)
		}
		if err := rpc.Write(conn, &rpc.Request{Op: rpc.OpTransmit, User: "replay", Text: strings.Join(words, " ")}); err != nil {
			t.Fatal(err)
		}
		got, err := rpc.ReadResponse(conn)
		if err != nil {
			t.Fatal(err)
		}
		if !got.OK {
			t.Fatalf("message %d: daemon error %q", i, got.Error)
		}
		if got.Restored != text.Join(want.RestoredWords) {
			t.Fatalf("message %d: restored %q != direct %q", i, got.Restored, text.Join(want.RestoredWords))
		}
		if got.SelectedDomain != direct.Corpus.Domains[want.SelectedDomain].Name {
			t.Fatalf("message %d: domain %q != direct %q", i, got.SelectedDomain, direct.Corpus.Domains[want.SelectedDomain].Name)
		}
		if got.Mismatch != want.Mismatch {
			t.Fatalf("message %d: mismatch %v != direct %v", i, got.Mismatch, want.Mismatch)
		}
		if got.PayloadBytes != want.PayloadBytes {
			t.Fatalf("message %d: payload %d != direct %d", i, got.PayloadBytes, want.PayloadBytes)
		}
		if got.LatencyMs != float64(want.Latency)/float64(time.Millisecond) {
			t.Fatalf("message %d: latency %v != direct %v", i, got.LatencyMs, want.Latency)
		}
		if got.CacheHit != want.EncCacheHit || got.Individual != want.UsedIndividual || got.UpdateFired != want.UpdateFired {
			t.Fatalf("message %d: flags %+v != direct %+v", i, got, want)
		}
	}
}

// TestStalledClientDisconnected checks the read deadline: a connection
// that sends nothing must be dropped instead of pinning its goroutine.
func TestStalledClientDisconnected(t *testing.T) {
	sys, err := core.NewSystem(soakConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(sys, 0)
	srv.idleTimeout = 50 * time.Millisecond
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Send nothing. The server must close the connection, surfacing as
	// EOF/reset here — not as our own read deadline expiring.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection still open")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never dropped the stalled connection")
	}
}
