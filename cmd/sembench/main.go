// Command sembench regenerates every table and figure in EXPERIMENTS.md:
// one experiment per flag value, or all of them.
//
// Usage:
//
//	sembench -exp e1          # Figure A + Table A
//	sembench -exp all         # everything (takes a few minutes)
//	sembench -exp e2 -quick   # reduced sizes for a fast look
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/mat"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: e1..e11, ablate, or all")
		quick   = flag.Bool("quick", false, "reduced sizes for a fast run")
		workers = flag.Int("workers", 0, "parallel workers for pretraining and trial fan-out (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *workers > 0 {
		mat.SetParallelism(*workers)
	}
	if err := run(*exp, *quick); err != nil {
		log.SetFlags(0)
		log.Fatalf("sembench: %v", err)
	}
}

// run executes the selected experiments and prints their tables.
func run(exp string, quick bool) error {
	fmt.Fprintln(os.Stderr, "sembench: building environment (pretraining general models)...")
	t0 := time.Now()
	env := experiments.Environment()
	fmt.Fprintf(os.Stderr, "sembench: environment ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	runners := map[string]func() error{
		"e1":     func() error { return runE1(env, quick) },
		"e2":     func() error { return runE2(env, quick) },
		"e3":     func() error { return runE3(env, quick) },
		"e4":     func() error { return runE4(env, quick) },
		"e5":     func() error { return runE5(env, quick) },
		"e6":     func() error { return runE6(env, quick) },
		"e7":     func() error { return runE7(env, quick) },
		"e8":     func() error { return runE8(env, quick) },
		"e9":     func() error { return runE9(env, quick) },
		"e10":    func() error { return runE10(env, quick) },
		"e11":    func() error { return runE11(env, quick) },
		"ablate": func() error { return runAblate(env, quick) },
	}
	if exp == "all" {
		for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "ablate"} {
			if err := runners[id](); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want e1..e11, ablate, all)", exp)
	}
	return r()
}

func runE11(env *experiments.Env, quick bool) error {
	opts := experiments.E11Options{}
	if quick {
		opts.Requests = 1000
		opts.NodeCounts = []int{2}
	}
	res, err := experiments.RunE11(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableG())
	return nil
}

func runE9(env *experiments.Env, quick bool) error {
	opts := experiments.E9Options{}
	if quick {
		opts.Donors = 6
		opts.Rounds = 3
	}
	res, err := experiments.RunE9(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableE())
	return nil
}

func runE10(env *experiments.Env, quick bool) error {
	opts := experiments.E10Options{}
	if quick {
		opts.Frames = 120
	}
	res, err := experiments.RunE10(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableF())
	return nil
}

func runE1(env *experiments.Env, quick bool) error {
	opts := experiments.E1Options{}
	if quick {
		opts.MessagesPerDomain = 40
		opts.Domains = []string{"it"}
	}
	res, err := experiments.RunE1(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureA())
	fmt.Println(res.TableA())
	// The Rayleigh companion sweep.
	opts.Rayleigh = true
	resR, err := experiments.RunE1(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(resR.FigureA())
	return nil
}

func runE2(env *experiments.Env, quick bool) error {
	opts := experiments.E2Options{}
	if quick {
		opts.Requests = 1500
	}
	res, err := experiments.RunE2(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureB())
	fmt.Println(res.LatencyTable())
	return nil
}

func runE3(env *experiments.Env, quick bool) error {
	opts := experiments.E3Options{}
	if quick {
		opts.Users = 4
		opts.Rounds = 16
	}
	res, err := experiments.RunE3(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureC())
	fmt.Printf("final mismatch gap (general - individual): %.4f\n\n", res.FinalGap)
	return nil
}

func runE4(env *experiments.Env, quick bool) error {
	opts := experiments.E4Options{}
	if quick {
		opts.Rounds = 8
	}
	res, err := experiments.RunE4(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableB())
	return nil
}

func runE5(env *experiments.Env, quick bool) error {
	opts := experiments.E5Options{}
	if quick {
		opts.Messages = 800
	}
	res, err := experiments.RunE5(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureD())
	return nil
}

func runE6(env *experiments.Env, quick bool) error {
	opts := experiments.E6Options{}
	if quick {
		opts.Messages = 150
	}
	res, err := experiments.RunE6(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableC())
	return nil
}

func runE7(env *experiments.Env, quick bool) error {
	opts := experiments.E7Options{}
	if quick {
		opts.Updates = 3
	}
	res, err := experiments.RunE7(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureE())
	return nil
}

func runE8(env *experiments.Env, quick bool) error {
	opts := experiments.E8Options{}
	if quick {
		opts.UserCounts = []int{1, 4, 16}
		opts.MessagesPerUser = 100
	}
	res, err := experiments.RunE8(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableD())
	return nil
}

func runAblate(env *experiments.Env, quick bool) error {
	opts := experiments.AblationOptions{}
	if quick {
		opts.Messages = 80
	}
	res, err := experiments.RunAblations(env, opts)
	if err != nil {
		return err
	}
	for _, t := range res.Tables() {
		fmt.Println(t)
	}
	return nil
}
