// Command sembench regenerates every table and figure in EXPERIMENTS.md:
// one experiment per flag value, or all of them.
//
// Usage:
//
//	sembench -exp e1          # Figure A + Table A
//	sembench -exp all         # everything (takes a few minutes)
//	sembench -exp e2 -quick   # reduced sizes for a fast look
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/mat"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: e1..e12, tiers, ablate, or all")
		quick   = flag.Bool("quick", false, "reduced sizes for a fast run")
		workers = flag.Int("workers", 0, "parallel workers for pretraining and trial fan-out (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *workers > 0 {
		mat.SetParallelism(*workers)
	}
	if err := run(*exp, *quick); err != nil {
		log.SetFlags(0)
		log.Fatalf("sembench: %v", err)
	}
}

// run executes the selected experiments and prints their tables.
func run(exp string, quick bool) error {
	fmt.Fprintln(os.Stderr, "sembench: building environment (pretraining general models)...")
	t0 := time.Now()
	env := experiments.Environment()
	fmt.Fprintf(os.Stderr, "sembench: environment ready in %v\n\n", time.Since(t0).Round(time.Millisecond))

	runners := map[string]func() error{
		"gemm":   func() error { return runGEMM(env, quick) },
		"e1":     func() error { return runE1(env, quick) },
		"e2":     func() error { return runE2(env, quick) },
		"e3":     func() error { return runE3(env, quick) },
		"e4":     func() error { return runE4(env, quick) },
		"e5":     func() error { return runE5(env, quick) },
		"e6":     func() error { return runE6(env, quick) },
		"e7":     func() error { return runE7(env, quick) },
		"e8":     func() error { return runE8(env, quick) },
		"e9":     func() error { return runE9(env, quick) },
		"e10":    func() error { return runE10(env, quick) },
		"e11":    func() error { return runE11(env, quick) },
		"e12":    func() error { return runE12(env, quick) },
		"tiers":  func() error { return runE12(env, quick) },
		"ablate": func() error { return runAblate(env, quick) },
	}
	if exp == "all" {
		for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "ablate"} {
			if err := runners[id](); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want e1..e12, tiers, ablate, gemm, all)", exp)
	}
	return r()
}

// runE12 prints the kernel-tier accuracy-vs-speed sweep: concept accuracy
// and mismatch delta per (tier, SNR) cell under aligned noise, plus the
// per-tier codec compute column.
func runE12(env *experiments.Env, quick bool) error {
	opts := experiments.E12Options{}
	if quick {
		opts.MessagesPerDomain = 50
		opts.SNRs = []float64{6, 18}
		opts.TimingTokens = 1024
	}
	res, err := experiments.RunE12(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableH())
	fmt.Println(res.TableH2())
	return nil
}

// runGEMM prints the batched-codec throughput table: the per-vector codec
// path against the batched GEMM + scratch-arena path on one fixed token
// stream. Outputs are bit-identical by construction (verified by the
// package bit-identity tests); only the schedule differs.
func runGEMM(env *experiments.Env, quick bool) error {
	tokens := 1 << 14
	if quick {
		tokens = 1 << 12
	}
	codec := env.General("it")
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(7))
	var words []string
	for len(words) < tokens {
		words = append(words, gen.Message(env.Corpus.Domain("it").Index, nil).Words...)
	}
	words = words[:tokens]
	ids := make([]int, len(words))
	for i, w := range words {
		ids[i] = codec.Domain().SurfaceID(w)
	}

	// Best-of-N timing with a warm-up round each, so cold scratch arenas
	// and pool fills do not land on either side of the comparison.
	const rounds = 5
	bestOf := func(fn func()) time.Duration {
		fn() // warm up
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			fn()
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}

	feat := make([]float64, codec.FeatureDim())
	concepts := make([]int, len(words))
	perVector := bestOf(func() {
		for t, id := range ids {
			codec.EncodeSurfaceID(id, feat)
			concepts[t] = codec.DecodeFeature(feat)
		}
	})

	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	batched := make([]int, len(words))
	gemm := bestOf(func() {
		sc.Reset()
		feats := codec.EncodeWordsInto(sc, words)
		codec.DecodeFeaturesInto(sc, feats, batched)
	})

	for i := range concepts {
		if concepts[i] != batched[i] {
			return fmt.Errorf("gemm: batched decode diverged at token %d", i)
		}
	}
	rate := func(d time.Duration) float64 { return float64(tokens) / d.Seconds() }
	fmt.Println("GEMM codec throughput (encode+decode, outputs bit-identical)")
	fmt.Printf("  %-22s %12s %14s\n", "path", "time", "tokens/s")
	fmt.Printf("  %-22s %12v %14.0f\n", "per-vector", perVector.Round(time.Microsecond), rate(perVector))
	fmt.Printf("  %-22s %12v %14.0f\n", "batched GEMM", gemm.Round(time.Microsecond), rate(gemm))
	fmt.Printf("  (today's per-vector entry points share the blocked kernels,\n")
	fmt.Printf("   so parity here means the batch API itself costs nothing)\n\n")

	// Kernel-level contrast at the decoder output-layer shape: the seed's
	// one-accumulator-chain dot (FP-add-latency-bound) against the blocked
	// GEMM with interleaved accumulation chains. Same element order, same
	// bits, different schedule.
	const hidden = 24
	vocab := codec.Domain().NumConcepts()
	w := mat.NewDense(vocab, hidden)
	w.Randomize(mat.NewRNG(3), 1)
	x := mat.NewDense(tokens, hidden)
	x.Randomize(mat.NewRNG(4), 1)
	out := mat.NewDense(tokens, vocab)
	chain := bestOf(func() {
		for t := 0; t < tokens; t++ {
			xr := x.Row(t)
			or := out.Row(t)
			for r := 0; r < vocab; r++ {
				row := w.Row(r)
				s := 0.0
				for j, wv := range row {
					s += wv * xr[j]
				}
				or[r] = s
			}
		}
	})
	ref := out.Clone()
	blocked := bestOf(func() { mat.MulMatT(out, x, w) })
	for i := range ref.Data {
		if out.Data[i] != ref.Data[i] {
			return fmt.Errorf("gemm: blocked kernel diverged at element %d", i)
		}
	}
	madds := float64(tokens) * float64(vocab) * hidden
	fmt.Printf("decoder-shape kernel (%dx%d x %d tokens, bit-identical)\n", vocab, hidden, tokens)
	fmt.Printf("  %-22s %12s %14s\n", "kernel", "time", "Gmadd/s")
	fmt.Printf("  %-22s %12v %14.2f\n", "serial chain (seed)", chain.Round(time.Microsecond), madds/chain.Seconds()/1e9)
	fmt.Printf("  %-22s %12v %14.2f\n", "blocked GEMM", blocked.Round(time.Microsecond), madds/blocked.Seconds()/1e9)
	fmt.Printf("  kernel speedup: %.2fx\n\n", chain.Seconds()/blocked.Seconds())
	return nil
}

func runE11(env *experiments.Env, quick bool) error {
	opts := experiments.E11Options{}
	if quick {
		opts.Requests = 1000
		opts.NodeCounts = []int{2}
	}
	res, err := experiments.RunE11(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableG())
	return nil
}

func runE9(env *experiments.Env, quick bool) error {
	opts := experiments.E9Options{}
	if quick {
		opts.Donors = 6
		opts.Rounds = 3
	}
	res, err := experiments.RunE9(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableE())
	return nil
}

func runE10(env *experiments.Env, quick bool) error {
	opts := experiments.E10Options{}
	if quick {
		opts.Frames = 120
	}
	res, err := experiments.RunE10(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableF())
	return nil
}

func runE1(env *experiments.Env, quick bool) error {
	opts := experiments.E1Options{}
	if quick {
		opts.MessagesPerDomain = 40
		opts.Domains = []string{"it"}
	}
	res, err := experiments.RunE1(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureA())
	fmt.Println(res.TableA())
	// The Rayleigh companion sweep.
	opts.Rayleigh = true
	resR, err := experiments.RunE1(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(resR.FigureA())
	return nil
}

func runE2(env *experiments.Env, quick bool) error {
	opts := experiments.E2Options{}
	if quick {
		opts.Requests = 1500
	}
	res, err := experiments.RunE2(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureB())
	fmt.Println(res.LatencyTable())
	return nil
}

func runE3(env *experiments.Env, quick bool) error {
	opts := experiments.E3Options{}
	if quick {
		opts.Users = 4
		opts.Rounds = 16
	}
	res, err := experiments.RunE3(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureC())
	fmt.Printf("final mismatch gap (general - individual): %.4f\n\n", res.FinalGap)
	return nil
}

func runE4(env *experiments.Env, quick bool) error {
	opts := experiments.E4Options{}
	if quick {
		opts.Rounds = 8
	}
	res, err := experiments.RunE4(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableB())
	return nil
}

func runE5(env *experiments.Env, quick bool) error {
	opts := experiments.E5Options{}
	if quick {
		opts.Messages = 800
	}
	res, err := experiments.RunE5(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureD())
	return nil
}

func runE6(env *experiments.Env, quick bool) error {
	opts := experiments.E6Options{}
	if quick {
		opts.Messages = 150
	}
	res, err := experiments.RunE6(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableC())
	return nil
}

func runE7(env *experiments.Env, quick bool) error {
	opts := experiments.E7Options{}
	if quick {
		opts.Updates = 3
	}
	res, err := experiments.RunE7(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.FigureE())
	return nil
}

func runE8(env *experiments.Env, quick bool) error {
	opts := experiments.E8Options{}
	if quick {
		opts.UserCounts = []int{1, 4, 16}
		opts.MessagesPerUser = 100
	}
	res, err := experiments.RunE8(env, opts)
	if err != nil {
		return err
	}
	fmt.Println(res.TableD())
	return nil
}

func runAblate(env *experiments.Env, quick bool) error {
	opts := experiments.AblationOptions{}
	if quick {
		opts.Messages = 80
	}
	res, err := experiments.RunAblations(env, opts)
	if err != nil {
		return err
	}
	for _, t := range res.Tables() {
		fmt.Println(t)
	}
	return nil
}
