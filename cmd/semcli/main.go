// Command semcli is the client for the edged daemon: it sends messages
// through the semantic pipeline and prints the restored text with
// transport statistics.
//
// Usage:
//
//	semcli [-addr localhost:7060] [-user alice] -text "the server is down"
//	semcli -stats
//	echo "the doctor ordered a scan" | semcli -user bob
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"repro/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("semcli: %v", err)
	}
}

func run() error {
	var (
		addr  = flag.String("addr", "localhost:7060", "edged address")
		user  = flag.String("user", "cli", "user name (drives individual models)")
		text  = flag.String("text", "", "message to transmit (default: read lines from stdin)")
		stats = flag.Bool("stats", false, "print daemon statistics and exit")
	)
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	if *stats {
		if err := rpc.Write(conn, &rpc.Request{Op: rpc.OpStats}); err != nil {
			return err
		}
		resp, err := rpc.ReadResponse(conn)
		if err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("daemon error: %s", resp.Error)
		}
		s := resp.Stats
		fmt.Printf("messages:      %d\n", s.Messages)
		fmt.Printf("sender hits:   %.1f%%\n", 100*s.SenderHitRate)
		fmt.Printf("cached models: %d (%d bytes)\n", s.CachedModels, s.CacheUsedBytes)
		fmt.Printf("decoder syncs: %d (%d bytes)\n", s.SyncCount, s.SyncBytes)
		return nil
	}

	send := func(msg string) error {
		if err := rpc.Write(conn, &rpc.Request{Op: rpc.OpTransmit, User: *user, Text: msg}); err != nil {
			return err
		}
		resp, err := rpc.ReadResponse(conn)
		if err != nil {
			return err
		}
		if !resp.OK {
			return fmt.Errorf("daemon error: %s", resp.Error)
		}
		fmt.Printf("restored : %s\n", resp.Restored)
		fmt.Printf("domain   : %s   payload: %d B   latency: %.2f ms   mismatch: %.3f\n",
			resp.SelectedDomain, resp.PayloadBytes, resp.LatencyMs, resp.Mismatch)
		if resp.Individual {
			fmt.Println("model    : user-specific individual model")
		}
		if resp.UpdateFired {
			fmt.Println("update   : decoder update shipped to receiver edge")
		}
		return nil
	}

	if *text != "" {
		return send(*text)
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := send(line); err != nil {
			return err
		}
	}
	return sc.Err()
}
