// Command semcli is the client for the edged daemon: it sends messages
// through the semantic pipeline and prints the restored text with
// transport statistics.
//
// Usage:
//
//	semcli [-addr localhost:7060] [-user alice] -text "the server is down"
//	semcli -stats
//	echo "the doctor ordered a scan" | semcli -user bob
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/rpc"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("semcli: %v", err)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", "localhost:7060", "edged address")
		user     = flag.String("user", "cli", "user name (drives individual models)")
		text     = flag.String("text", "", "message to transmit (default: read lines from stdin)")
		deadline = flag.Duration("deadline", 0, "per-request deadline, forwarded to the daemon's admission gate (0 = none)")
		stats    = flag.Bool("stats", false, "print daemon statistics and exit")
	)
	flag.Parse()

	cl, err := rpc.Dial(*addr)
	if err != nil {
		return err
	}
	defer cl.Close()

	if *stats {
		s, err := cl.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("messages:      %d\n", s.Messages)
		fmt.Printf("sender hits:   %.1f%%\n", 100*s.SenderHitRate)
		fmt.Printf("cached models: %d (%d bytes)\n", s.CachedModels, s.CacheUsedBytes)
		fmt.Printf("decoder syncs: %d (%d bytes)\n", s.SyncCount, s.SyncBytes)
		if sv := s.Serve; sv != nil {
			fmt.Printf("in-flight:     %d (%d shed)\n", sv.InFlight, sv.Shed)
			fmt.Printf("service:       p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
				sv.LatencyP50Ms, sv.LatencyP95Ms, sv.LatencyP99Ms)
			fmt.Printf("queue wait:    p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
				sv.QueueWaitP50Ms, sv.QueueWaitP95Ms, sv.QueueWaitP99Ms)
			if sv.Batches > 0 {
				parts := make([]string, 0, len(sv.BatchOccupancy))
				for i, n := range sv.BatchOccupancy {
					if n > 0 {
						parts = append(parts, fmt.Sprintf("%s:%d", rpc.BatchOccupancyLabels[i], n))
					}
				}
				fmt.Printf("batches:       %d (%d requests, occupancy %s)\n",
					sv.Batches, sv.BatchedRequests, strings.Join(parts, " "))
			}
		}
		return nil
	}

	send := func(msg string) error {
		ctx := context.Background()
		if *deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *deadline)
			defer cancel()
		}
		resp, err := cl.TransmitContext(ctx, *user, msg)
		if err != nil {
			return err
		}
		if resp.Shed {
			return fmt.Errorf("request shed by daemon: %s", resp.Error)
		}
		if !resp.OK {
			return fmt.Errorf("daemon error: %s", resp.Error)
		}
		fmt.Printf("restored : %s\n", resp.Restored)
		fmt.Printf("domain   : %s   payload: %d B   latency: %.2f ms   mismatch: %.3f\n",
			resp.SelectedDomain, resp.PayloadBytes, resp.LatencyMs, resp.Mismatch)
		if resp.Individual {
			fmt.Println("model    : user-specific individual model")
		}
		if resp.UpdateFired {
			fmt.Println("update   : decoder update shipped to receiver edge")
		}
		return nil
	}

	if *text != "" {
		return send(*text)
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if err := send(line); err != nil {
			return err
		}
	}
	return sc.Err()
}
