package main

import (
	"strings"
	"testing"
)

// mkReport builds a report with the given benchmark ns/op means.
func mkReport(ns map[string]float64) *Report {
	rep := &Report{Benchmarks: make(map[string]*Bench)}
	for name, v := range ns {
		rep.Benchmarks[name] = &Bench{Runs: 1, Iters: 1, NsPerOp: &Stat{Mean: v, Min: v, Max: v}}
	}
	return rep
}

func TestCompareReportsThresholds(t *testing.T) {
	base := mkReport(map[string]float64{
		"BenchmarkFast":     100,
		"BenchmarkWarn":     100,
		"BenchmarkFail":     100,
		"BenchmarkImproved": 100,
		"BenchmarkGone":     100,
	})
	cur := mkReport(map[string]float64{
		"BenchmarkFast":     105, // +5%: fine
		"BenchmarkWarn":     112, // +12%: warn
		"BenchmarkFail":     130, // +30%: fail
		"BenchmarkImproved": 50,  // -50%: fine
		"BenchmarkNew":      77,  // not in baseline: ignored
	})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if res.Warnings != 2 || res.Failures != 1 {
		t.Fatalf("warnings=%d failures=%d, want 2 (incl. missing) and 1", res.Warnings, res.Failures)
	}
	byName := make(map[string]Comparison, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	if byName["BenchmarkFast"].Level != "" || byName["BenchmarkImproved"].Level != "" {
		t.Fatalf("benign rows flagged: %+v", res.Rows)
	}
	if byName["BenchmarkWarn"].Level != "WARN" {
		t.Fatalf("BenchmarkWarn level = %q", byName["BenchmarkWarn"].Level)
	}
	if byName["BenchmarkFail"].Level != "FAIL" {
		t.Fatalf("BenchmarkFail level = %q", byName["BenchmarkFail"].Level)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v, want [BenchmarkGone]", res.Missing)
	}
	// The vanished benchmark counts as the second warning.
	if res.Warnings != 2 {
		t.Fatalf("warnings = %d, want 2 (one WARN row + one missing)", res.Warnings)
	}
}

func TestCompareReportsBoundaryExactlyAtThreshold(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkEdge": 100})
	cur := mkReport(map[string]float64{"BenchmarkEdge": 125})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if res.Failures != 1 {
		t.Fatalf("+25%% exactly must fail, got %+v", res.Rows)
	}
}

func TestCompareReportsSkipsMetricOnlyBenchmarks(t *testing.T) {
	base := &Report{Benchmarks: map[string]*Bench{
		"BenchmarkMetricsOnly": {Runs: 1, Metrics: map[string]*Stat{"acc": {Mean: 0.9}}},
	}}
	cur := mkReport(map[string]float64{})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if len(res.Rows) != 0 || len(res.Missing) != 0 {
		t.Fatalf("metric-only benchmark not skipped: %+v", res)
	}
}

func TestCompareReportsMinRunsCapsAtWarn(t *testing.T) {
	// Single-sample benchmarks regressing past the fail threshold may only
	// warn when -min-runs demands more samples; multi-sample ones still fail.
	base := mkReport(map[string]float64{"BenchmarkOnce": 100, "BenchmarkThrice": 100})
	cur := mkReport(map[string]float64{"BenchmarkOnce": 200, "BenchmarkThrice": 200})
	base.Benchmarks["BenchmarkThrice"].Runs = 3
	cur.Benchmarks["BenchmarkThrice"].Runs = 3
	res := compareReports(base, cur, 0.10, 0.25, 2)
	if res.Failures != 1 || res.Warnings != 1 {
		t.Fatalf("failures=%d warnings=%d, want 1 and 1: %+v", res.Failures, res.Warnings, res.Rows)
	}
	for _, row := range res.Rows {
		if row.Name == "BenchmarkOnce" && row.Level != "WARN" {
			t.Fatalf("single-sample regression level = %q, want WARN", row.Level)
		}
		if row.Name == "BenchmarkThrice" && row.Level != "FAIL" {
			t.Fatalf("multi-sample regression level = %q, want FAIL", row.Level)
		}
	}
}

func TestPrintComparisonRendersLevels(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100})
	cur := mkReport(map[string]float64{"BenchmarkA": 140})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	var sb strings.Builder
	printComparison(&sb, res, 0.10, 0.25)
	out := sb.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "BenchmarkA") {
		t.Fatalf("missing FAIL row:\n%s", out)
	}
	if !strings.Contains(out, "MISS") || !strings.Contains(out, "BenchmarkB") {
		t.Fatalf("missing MISS row:\n%s", out)
	}
}
