package main

import (
	"strings"
	"testing"
)

// mkReport builds a report with the given benchmark ns/op means.
func mkReport(ns map[string]float64) *Report {
	rep := &Report{Benchmarks: make(map[string]*Bench)}
	for name, v := range ns {
		rep.Benchmarks[name] = &Bench{Runs: 1, Iters: 1, NsPerOp: &Stat{Mean: v, Min: v, Max: v}}
	}
	return rep
}

func TestCompareReportsThresholds(t *testing.T) {
	base := mkReport(map[string]float64{
		"BenchmarkFast":     100,
		"BenchmarkWarn":     100,
		"BenchmarkFail":     100,
		"BenchmarkImproved": 100,
		"BenchmarkGone":     100,
	})
	cur := mkReport(map[string]float64{
		"BenchmarkFast":     105, // +5%: fine
		"BenchmarkWarn":     112, // +12%: warn
		"BenchmarkFail":     130, // +30%: fail
		"BenchmarkImproved": 50,  // -50%: fine
		"BenchmarkNew":      77,  // not in baseline: ignored
	})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if res.Warnings != 2 || res.Failures != 1 {
		t.Fatalf("warnings=%d failures=%d, want 2 (incl. missing) and 1", res.Warnings, res.Failures)
	}
	byName := make(map[string]Comparison, len(res.Rows))
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	if byName["BenchmarkFast"].Level != "" || byName["BenchmarkImproved"].Level != "" {
		t.Fatalf("benign rows flagged: %+v", res.Rows)
	}
	if byName["BenchmarkWarn"].Level != "WARN" {
		t.Fatalf("BenchmarkWarn level = %q", byName["BenchmarkWarn"].Level)
	}
	if byName["BenchmarkFail"].Level != "FAIL" {
		t.Fatalf("BenchmarkFail level = %q", byName["BenchmarkFail"].Level)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v, want [BenchmarkGone]", res.Missing)
	}
	// The vanished benchmark counts as the second warning.
	if res.Warnings != 2 {
		t.Fatalf("warnings = %d, want 2 (one WARN row + one missing)", res.Warnings)
	}
}

func TestCompareReportsBoundaryExactlyAtThreshold(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkEdge": 100})
	cur := mkReport(map[string]float64{"BenchmarkEdge": 125})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if res.Failures != 1 {
		t.Fatalf("+25%% exactly must fail, got %+v", res.Rows)
	}
}

func TestCompareReportsSkipsMetricOnlyBenchmarks(t *testing.T) {
	base := &Report{Benchmarks: map[string]*Bench{
		"BenchmarkMetricsOnly": {Runs: 1, Metrics: map[string]*Stat{"acc": {Mean: 0.9}}},
	}}
	cur := mkReport(map[string]float64{})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if len(res.Rows) != 0 || len(res.Missing) != 0 {
		t.Fatalf("metric-only benchmark not skipped: %+v", res)
	}
}

func TestCompareReportsMinRunsCapsAtWarn(t *testing.T) {
	// Single-sample benchmarks regressing past the fail threshold may only
	// warn when -min-runs demands more samples; multi-sample ones still fail.
	base := mkReport(map[string]float64{"BenchmarkOnce": 100, "BenchmarkThrice": 100})
	cur := mkReport(map[string]float64{"BenchmarkOnce": 200, "BenchmarkThrice": 200})
	base.Benchmarks["BenchmarkThrice"].Runs = 3
	cur.Benchmarks["BenchmarkThrice"].Runs = 3
	res := compareReports(base, cur, 0.10, 0.25, 2)
	if res.Failures != 1 || res.Warnings != 1 {
		t.Fatalf("failures=%d warnings=%d, want 1 and 1: %+v", res.Failures, res.Warnings, res.Rows)
	}
	for _, row := range res.Rows {
		if row.Name == "BenchmarkOnce" && row.Level != "WARN" {
			t.Fatalf("single-sample regression level = %q, want WARN", row.Level)
		}
		if row.Name == "BenchmarkThrice" && row.Level != "FAIL" {
			t.Fatalf("multi-sample regression level = %q, want FAIL", row.Level)
		}
	}
}

// withMem attaches -benchmem stats to an existing benchmark entry.
func withMem(rep *Report, name string, bytes, allocs float64) {
	b := rep.Benchmarks[name]
	b.BPerOp = &Stat{Mean: bytes, Min: bytes, Max: bytes}
	b.AllocsPerOp = &Stat{Mean: allocs, Min: allocs, Max: allocs}
}

func TestCompareReportsMemoryRegressions(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkMem": 100})
	cur := mkReport(map[string]float64{"BenchmarkMem": 100})
	withMem(base, "BenchmarkMem", 1000, 10)
	withMem(cur, "BenchmarkMem", 1150, 13) // +15% bytes, +30% allocs
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (ns/op + B/op + allocs/op): %+v", len(res.Rows), res.Rows)
	}
	byUnit := make(map[string]Comparison)
	for _, row := range res.Rows {
		byUnit[row.Unit] = row
	}
	if byUnit["ns/op"].Level != "" {
		t.Fatalf("flat ns/op flagged: %+v", byUnit["ns/op"])
	}
	if byUnit["B/op"].Level != "WARN" {
		t.Fatalf("B/op +15%% level = %q, want WARN", byUnit["B/op"].Level)
	}
	if byUnit["allocs/op"].Level != "FAIL" {
		t.Fatalf("allocs/op +30%% level = %q, want FAIL", byUnit["allocs/op"].Level)
	}
	if res.Warnings != 1 || res.Failures != 1 {
		t.Fatalf("warnings=%d failures=%d, want 1 and 1", res.Warnings, res.Failures)
	}
}

func TestCompareReportsMemoryFloors(t *testing.T) {
	// Both sides under the floors: no memory rows at all, even though the
	// relative deltas are huge (0→1 alloc, 16→48 bytes).
	base := mkReport(map[string]float64{"BenchmarkTiny": 100})
	cur := mkReport(map[string]float64{"BenchmarkTiny": 100})
	withMem(base, "BenchmarkTiny", 16, 0)
	withMem(cur, "BenchmarkTiny", 48, 1)
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if len(res.Rows) != 1 || res.Warnings != 0 || res.Failures != 0 {
		t.Fatalf("sub-floor wobble graded: %+v", res)
	}
	// A genuine zero→many regression crosses the floor and grades against
	// the floor value rather than dividing by zero.
	withMem(cur, "BenchmarkTiny", 4096, 7)
	res = compareReports(base, cur, 0.10, 0.25, 1)
	if res.Failures != 2 {
		t.Fatalf("0→4096B / 0→7 allocs failures = %d, want 2: %+v", res.Failures, res.Rows)
	}
	for _, row := range res.Rows {
		if row.Unit != "ns/op" && (row.Delta <= 0 || row.Delta > 1e6) {
			t.Fatalf("floored delta out of range: %+v", row)
		}
	}
}

func TestCompareReportsMemoryOnlyOneSide(t *testing.T) {
	// Baseline recorded without -benchmem: ns/op still compares, memory
	// units are silently absent rather than counted missing.
	base := mkReport(map[string]float64{"BenchmarkHalf": 100})
	cur := mkReport(map[string]float64{"BenchmarkHalf": 100})
	withMem(cur, "BenchmarkHalf", 4096, 10)
	res := compareReports(base, cur, 0.10, 0.25, 1)
	if len(res.Rows) != 1 || res.Rows[0].Unit != "ns/op" {
		t.Fatalf("one-sided memory stats graded: %+v", res.Rows)
	}
}

func TestCompareReportsMemoryMinRunsCapsAtWarn(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkOnce": 100})
	cur := mkReport(map[string]float64{"BenchmarkOnce": 100})
	withMem(base, "BenchmarkOnce", 1000, 10)
	withMem(cur, "BenchmarkOnce", 2000, 20) // +100% on both memory units
	res := compareReports(base, cur, 0.10, 0.25, 2)
	if res.Failures != 0 || res.Warnings != 2 {
		t.Fatalf("single-sample memory regression: failures=%d warnings=%d, want 0 and 2", res.Failures, res.Warnings)
	}
}

func TestPrintComparisonRendersLevels(t *testing.T) {
	base := mkReport(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100})
	cur := mkReport(map[string]float64{"BenchmarkA": 140})
	res := compareReports(base, cur, 0.10, 0.25, 1)
	var sb strings.Builder
	printComparison(&sb, res, 0.10, 0.25)
	out := sb.String()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, "BenchmarkA") {
		t.Fatalf("missing FAIL row:\n%s", out)
	}
	if !strings.Contains(out, "MISS") || !strings.Contains(out, "BenchmarkB") {
		t.Fatalf("missing MISS row:\n%s", out)
	}
}
