// Command benchjson converts `go test -bench` text output into a stable
// JSON document so CI can archive the performance trajectory of every PR
// (BENCH_pr.json) and two runs can be diffed mechanically.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -o BENCH_pr.json
//
// Repeated runs of one benchmark (-count N) aggregate into mean/min/max.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Stat aggregates one measured unit over repeated benchmark runs.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Bench is the aggregate of all runs of one benchmark name.
type Bench struct {
	Runs        int              `json:"runs"`
	Iters       int64            `json:"iters"`
	NsPerOp     *Stat            `json:"ns_per_op,omitempty"`
	BPerOp      *Stat            `json:"b_per_op,omitempty"`
	AllocsPerOp *Stat            `json:"allocs_per_op,omitempty"`
	MBPerS      *Stat            `json:"mb_per_s,omitempty"`
	Metrics     map[string]*Stat `json:"metrics,omitempty"`
}

// Report is the whole document.
type Report struct {
	GoOS       string            `json:"goos,omitempty"`
	GoArch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Pkgs       []string          `json:"pkgs,omitempty"`
	Benchmarks map[string]*Bench `json:"benchmarks"`
}

// samples buffers per-unit observations for one benchmark name.
type samples struct {
	iters int64
	units map[string][]float64
}

// parseBench reads go-test benchmark output and aggregates it.
func parseBench(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: make(map[string]*Bench)}
	acc := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkgs = append(rep.Pkgs, strings.TrimSpace(strings.TrimPrefix(line, "pkg:")))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value/unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := stripProcSuffix(fields[0])
		s := acc[name]
		if s == nil {
			s = &samples{units: make(map[string][]float64)}
			acc[name] = s
		}
		s.iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			s.units[fields[i+1]] = append(s.units[fields[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, s := range acc {
		b := &Bench{Iters: s.iters}
		for unit, vals := range s.units {
			st := newStat(vals)
			if b.Runs < len(vals) {
				b.Runs = len(vals)
			}
			switch unit {
			case "ns/op":
				b.NsPerOp = st
			case "B/op":
				b.BPerOp = st
			case "allocs/op":
				b.AllocsPerOp = st
			case "MB/s":
				b.MBPerS = st
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]*Stat)
				}
				b.Metrics[unit] = st
			}
		}
		rep.Benchmarks[name] = b
	}
	return rep, nil
}

// stripProcSuffix removes the trailing "-N" GOMAXPROCS marker go test
// appends to benchmark names (absent when GOMAXPROCS is 1). Without the
// strip, documents recorded at different processor counts have disjoint
// name sets and a baseline comparison matches nothing.
func stripProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// newStat reduces a sample list.
func newStat(vals []float64) *Stat {
	st := &Stat{Min: vals[0], Max: vals[0]}
	for _, v := range vals {
		st.Mean += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean /= float64(len(vals))
	return st
}

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Fatalf("benchjson: %v", err)
	}
}

func run() error {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two benchjson files: benchjson -compare BASELINE CURRENT")
	warn := flag.Float64("warn", 0.10, "with -compare: warn at this fractional ns/op regression")
	failAt := flag.Float64("fail", 0.25, "with -compare: fail (exit 1) at this fractional ns/op regression")
	minRuns := flag.Int("min-runs", 1, "with -compare: benchmarks with fewer samples than this on either side warn but never fail")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two file arguments (baseline, current), got %d", flag.NArg())
		}
		return runCompare(flag.Arg(0), flag.Arg(1), *warn, *failAt, *minRuns)
	}
	rep, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	// Maps marshal with sorted keys, so the document is byte-stable for a
	// given input and two artifacts diff cleanly.
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(*out, doc, 0o644)
}
