package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkSystemTransmit-8   	    1207	    987654 ns/op
BenchmarkConcurrentTransmit/1user-8     	       1	   1200000 ns/op	  5000 B/op	      50 allocs/op
BenchmarkConcurrentTransmit/8users-8    	       1	    400000 ns/op	  5100 B/op	      51 allocs/op
BenchmarkConcurrentTransmit/8users-8    	       1	    420000 ns/op	  5100 B/op	      49 allocs/op
BenchmarkConcurrentTransmit/8users-8    	       1	    380000 ns/op	  5100 B/op	      50 allocs/op
BenchmarkE1SemanticVsTraditional-8      	       1	 500000000 ns/op	         0.9500 sem_sim@-6dB	         5.100 payload_ratio
PASS
ok  	repro	12.3s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU == "" {
		t.Fatalf("header lost: %+v", rep)
	}
	if len(rep.Pkgs) != 1 || rep.Pkgs[0] != "repro" {
		t.Fatalf("pkgs = %v", rep.Pkgs)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(rep.Benchmarks))
	}

	single := rep.Benchmarks["BenchmarkSystemTransmit"]
	if single == nil || single.Runs != 1 || single.Iters != 1207 {
		t.Fatalf("single = %+v", single)
	}
	if single.NsPerOp.Mean != 987654 || single.BPerOp != nil {
		t.Fatalf("single stats = %+v", single.NsPerOp)
	}

	multi := rep.Benchmarks["BenchmarkConcurrentTransmit/8users"]
	if multi == nil || multi.Runs != 3 {
		t.Fatalf("multi = %+v", multi)
	}
	if multi.NsPerOp.Min != 380000 || multi.NsPerOp.Max != 420000 || multi.NsPerOp.Mean != 400000 {
		t.Fatalf("ns/op aggregate = %+v", multi.NsPerOp)
	}
	if multi.AllocsPerOp.Mean != 50 {
		t.Fatalf("allocs aggregate = %+v", multi.AllocsPerOp)
	}

	custom := rep.Benchmarks["BenchmarkE1SemanticVsTraditional"]
	if custom == nil || custom.Metrics["sem_sim@-6dB"].Mean != 0.95 {
		t.Fatalf("custom metrics = %+v", custom)
	}
	if custom.Metrics["payload_ratio"].Mean != 5.1 {
		t.Fatalf("payload_ratio = %+v", custom.Metrics["payload_ratio"])
	}
}

// TestStripProcSuffix pins the GOMAXPROCS-marker normalization: reports
// recorded at different processor counts must share one name set so the
// baseline comparison can match them.
func TestStripProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":                     "BenchmarkFoo",
		"BenchmarkFoo/bar-16":                "BenchmarkFoo/bar",
		"BenchmarkFoo":                       "BenchmarkFoo",
		"BenchmarkMulVec/1024x1024/serial-4": "BenchmarkMulVec/1024x1024/serial",
		"BenchmarkFoo-8x":                    "BenchmarkFoo-8x", // non-numeric tail stays
		"BenchmarkFoo-":                      "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := stripProcSuffix(in); got != want {
			t.Fatalf("stripProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	rep, err := parseBench(strings.NewReader("PASS\nok repro 0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %v", rep.Benchmarks)
	}
}

func TestParseBenchBadValue(t *testing.T) {
	if _, err := parseBench(strings.NewReader("BenchmarkX-8 1 oops ns/op\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}
