package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Comparison is the verdict for one (benchmark, unit) pair present in both
// reports. A benchmark contributes up to three rows: ns/op always, plus
// B/op and allocs/op when -benchmem samples exist on both sides.
type Comparison struct {
	Name  string
	Unit  string  // "ns/op", "B/op" or "allocs/op"
	Base  float64 // baseline best (min) value
	New   float64 // current best (min) value
	Delta float64 // (New-Base)/Base; positive = regression
	Level string  // "", "WARN" or "FAIL"
}

// Memory-unit floors: pairs where both sides sit below the floor are
// skipped entirely (a 0→48-byte or 0→1-alloc wobble is fixture noise, not
// a leak), and a zero baseline is clamped up to the floor so a genuine
// 0→N regression reports a finite delta instead of dividing by zero.
const (
	bytesFloor  = 64
	allocsFloor = 2
)

// CompareResult aggregates a baseline/current report comparison.
type CompareResult struct {
	Rows     []Comparison
	Missing  []string // benchmarks in the baseline absent from the current run
	Warnings int
	Failures int
}

// compareReports diffs best-of-run (min) values per benchmark — the
// standard robust statistic for wall-clock comparisons, since scheduling
// noise only ever inflates a sample. Regressions at or above warnFrac
// mark WARN, at or above failFrac mark FAIL; improvements and small
// noise pass silently. Benchmarks without ns/op samples (pure metric
// reporters) are skipped; baseline benchmarks missing from the current
// run are listed and counted as warnings. Benchmarks with fewer than
// minRuns samples on either side are capped at WARN: a single-iteration
// measurement on a different CPU is too noisy to hard-fail a job, so
// only the deliberately multi-sampled benchmarks gate.
//
// When both reports carry -benchmem samples for a benchmark, its B/op and
// allocs/op diff under the same thresholds and minRuns cap — allocation
// counts are deterministic for a fixed binary, so a regression there is a
// real code change (a lost buffer reuse, a new escape), not scheduler
// noise. Pairs below the unit floors are skipped (see bytesFloor).
func compareReports(base, cur *Report, warnFrac, failFrac float64, minRuns int) CompareResult {
	var res CompareResult
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		if b.NsPerOp == nil || b.NsPerOp.Min <= 0 {
			continue
		}
		c, ok := cur.Benchmarks[name]
		if !ok || c.NsPerOp == nil {
			res.Missing = append(res.Missing, name)
			res.Warnings++
			continue
		}
		canFail := b.Runs >= minRuns && c.Runs >= minRuns
		grade := func(unit string, baseV, newV, floor float64) {
			row := Comparison{Name: name, Unit: unit, Base: baseV, New: newV}
			if baseV < floor {
				baseV = floor
			}
			row.Delta = (newV - baseV) / baseV
			switch {
			case row.Delta >= failFrac && canFail:
				row.Level = "FAIL"
				res.Failures++
			case row.Delta >= warnFrac:
				row.Level = "WARN"
				res.Warnings++
			}
			res.Rows = append(res.Rows, row)
		}
		grade("ns/op", b.NsPerOp.Min, c.NsPerOp.Min, 1)
		if b.BPerOp != nil && c.BPerOp != nil &&
			(b.BPerOp.Min >= bytesFloor || c.BPerOp.Min >= bytesFloor) {
			grade("B/op", b.BPerOp.Min, c.BPerOp.Min, bytesFloor)
		}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil &&
			(b.AllocsPerOp.Min >= allocsFloor || c.AllocsPerOp.Min >= allocsFloor) {
			grade("allocs/op", b.AllocsPerOp.Min, c.AllocsPerOp.Min, allocsFloor)
		}
	}
	return res
}

// readReport loads a benchjson document.
func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("benchjson: parse %s: %w", path, err)
	}
	return &rep, nil
}

// printComparison renders the comparison table.
func printComparison(w io.Writer, res CompareResult, warnFrac, failFrac float64) {
	for _, row := range res.Rows {
		level := "    "
		if row.Level != "" {
			level = row.Level
		}
		fmt.Fprintf(w, "%s %-60s %12.0f -> %12.0f %-9s %+6.1f%%\n",
			level, row.Name, row.Base, row.New, row.Unit, 100*row.Delta)
	}
	for _, name := range res.Missing {
		fmt.Fprintf(w, "MISS %-60s not in current run\n", name)
	}
	fmt.Fprintf(w, "%d benchmarks compared: %d warnings (>= %.0f%%), %d failures (>= %.0f%%)\n",
		len(res.Rows), res.Warnings, 100*warnFrac, res.Failures, 100*failFrac)
}

// runCompare executes comparison mode: exit status 1 when any benchmark
// regressed past the failure threshold.
func runCompare(basePath, curPath string, warnFrac, failFrac float64, minRuns int) error {
	base, err := readReport(basePath)
	if err != nil {
		return err
	}
	cur, err := readReport(curPath)
	if err != nil {
		return err
	}
	res := compareReports(base, cur, warnFrac, failFrac, minRuns)
	fmt.Printf("benchjson: %s vs baseline %s\n", curPath, basePath)
	printComparison(os.Stdout, res, warnFrac, failFrac)
	if res.Failures > 0 {
		return fmt.Errorf("%d benchmark measurement(s) regressed >= %.0f%%", res.Failures, 100*failFrac)
	}
	return nil
}
