// Package repro holds the top-level benchmark harness: one benchmark per
// experiment table/figure (regenerating its headline numbers via
// b.ReportMetric) plus micro-benchmarks for the hot paths. The full-size
// tables are produced by cmd/sembench; these benches use the experiments'
// reduced configurations so `go test -bench=.` completes in minutes.
package repro

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/mat"
	"repro/internal/nn"
	"repro/internal/selection"
	"repro/internal/semantic"
	"repro/internal/trace"
)

// BenchmarkE1SemanticVsTraditional regenerates Figure A / Table A: meaning
// fidelity versus SNR for the semantic pipeline against the Huffman-coded
// traditional pipeline.
func BenchmarkE1SemanticVsTraditional(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E1Options{
		SNRs:              []float64{-6, 0, 6, 12, 18},
		MessagesPerDomain: 60,
		Domains:           []string{"it"},
	}
	var res *experiments.E1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE1(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	low := res.Points[0]
	high := res.Points[len(res.Points)-1]
	b.ReportMetric(low.SemSimilarity, "sem_sim@-6dB")
	b.ReportMetric(low.TradConceptAcc, "trad_acc@-6dB")
	b.ReportMetric(high.SemConceptAcc, "sem_acc@18dB")
	b.ReportMetric(high.TradPayloadByte/high.SemPayloadByte, "payload_ratio")
}

// BenchmarkE2CachePolicies regenerates Figure B: model-cache hit rate
// versus capacity per eviction policy.
func BenchmarkE2CachePolicies(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E2Options{
		Capacities: []int{2, 4, 6},
		Requests:   2000,
	}
	var res *experiments.E2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE2(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range res.Cells {
		if c.Policy == "lru" && c.Capacity == 4 {
			b.ReportMetric(c.HitRate, "lru_hit@4models")
		}
		if c.Policy == "gdsf" && c.Capacity == 4 {
			b.ReportMetric(c.HitRate, "gdsf_hit@4models")
		}
	}
}

// BenchmarkE3Personalization regenerates Figure C: semantic mismatch over
// communication rounds with and without individual models.
func BenchmarkE3Personalization(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E3Options{Users: 6, Rounds: 16, BufferThreshold: 24, IdiolectStrength: 0.4}
	var res *experiments.E3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE3(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	first := res.Rounds[0]
	last := res.Rounds[len(res.Rounds)-1]
	b.ReportMetric(first.IndividualMismatch, "mismatch_round1")
	b.ReportMetric(last.IndividualMismatch, "mismatch_final")
	b.ReportMetric(res.FinalGap, "final_gap")
}

// BenchmarkE4DecoderCopy regenerates Table B: feedback/sync traffic of the
// decoder-copy design versus returning receiver outputs.
func BenchmarkE4DecoderCopy(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E4Options{Rounds: 8, BufferSize: 24}
	var res *experiments.E4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE4(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mechanisms[0].TotalBytes, "output_return_B")
	b.ReportMetric(res.Mechanisms[1].TotalBytes, "decoder_copy_B")
	b.ReportMetric(res.Mechanisms[3].TotalBytes, "copy_topk_int8_B")
}

// BenchmarkE5ModelSelection regenerates Figure D: selection policy
// comparison under topic drift.
func BenchmarkE5ModelSelection(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E5Options{
		Selectors: []string{core.SelectorNaiveBayes, core.SelectorSticky},
		Messages:  800,
		Users:     3,
	}
	var res *experiments.E5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE5(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		switch row.Selector {
		case core.SelectorNaiveBayes:
			b.ReportMetric(row.SelectionAccuracy, "nb_acc")
		case core.SelectorSticky:
			b.ReportMetric(row.SelectionAccuracy, "sticky_acc")
		}
	}
}

// BenchmarkE6EdgeVsCloud regenerates Table C: latency percentiles per
// model-placement condition.
func BenchmarkE6EdgeVsCloud(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E6Options{Messages: 200}
	var res *experiments.E6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE6(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Rows[0].P99.Microseconds())/1000, "warm_p99_ms")
	b.ReportMetric(float64(res.Rows[1].P99.Microseconds())/1000, "cold_p99_ms")
	b.ReportMetric(float64(res.Rows[2].Mean.Microseconds())/1000, "thrash_mean_ms")
}

// BenchmarkE7GradientCompression regenerates Figure E: sync payload versus
// post-sync accuracy across compression settings.
func BenchmarkE7GradientCompression(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E7Options{TopKFracs: []float64{1, 0.1}, BufferSize: 32, Updates: 3}
	var res *experiments.E7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE7(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range res.Points {
		if p.TopKFrac == 1 && !p.Int8 {
			b.ReportMetric(p.BytesPerSync, "dense_B")
			b.ReportMetric(p.ReceiverAccuracy, "dense_acc")
		}
		if p.TopKFrac == 0.1 && p.Int8 {
			b.ReportMetric(p.BytesPerSync, "topk10_int8_B")
			b.ReportMetric(p.ReceiverAccuracy, "topk10_int8_acc")
		}
	}
}

// BenchmarkE8Scalability regenerates Table D: wall-clock edge throughput
// under concurrent users.
func BenchmarkE8Scalability(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E8Options{UserCounts: []int{1, 8, 32}, MessagesPerUser: 100}
	var res *experiments.E8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE8(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].Throughput, "msgs_per_s@1user")
	b.ReportMetric(res.Rows[len(res.Rows)-1].Throughput, "msgs_per_s@32users")
}

// BenchmarkE9FedAvg regenerates Table E: cold-start quality of the
// FedAvg-improved general model.
func BenchmarkE9FedAvg(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E9Options{Donors: 6, Rounds: 3, ProbeUsers: 4}
	var res *experiments.E9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE9(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].ColdStartAcc, "stock_coldstart_acc")
	b.ReportMetric(res.Rows[1].ColdStartAcc, "fedavg_coldstart_acc")
}

// BenchmarkE10Multimodal regenerates Table F: semantic versus raw
// transport for avatar pose streams.
func BenchmarkE10Multimodal(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.E10Options{Frames: 150}
	var res *experiments.E10Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunE10(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].NMSE, "semantic_nmse")
	b.ReportMetric(res.Rows[1].NMSE, "raw_equal_bytes_nmse")
}

// BenchmarkAblations regenerates the design-choice ablation tables.
func BenchmarkAblations(b *testing.B) {
	env := experiments.Environment()
	opts := experiments.AblationOptions{Messages: 60}
	var res *experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblations(env, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Transport[0].ConceptAcc, "hamming_acc@6dB")
	b.ReportMetric(res.Transport[1].ConceptAcc, "uncoded_acc@6dB")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks for the hot paths.

// BenchmarkSemanticEncodeToken measures single-token semantic encoding.
func BenchmarkSemanticEncodeToken(b *testing.B) {
	env := experiments.Environment()
	codec := env.General("it")
	dst := make([]float64, codec.FeatureDim())
	sid := codec.Domain().SurfaceID("server")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.EncodeSurfaceID(sid, dst)
	}
}

// BenchmarkSemanticDecodeToken measures single-token semantic decoding.
func BenchmarkSemanticDecodeToken(b *testing.B) {
	env := experiments.Environment()
	codec := env.General("it")
	feat := make([]float64, codec.FeatureDim())
	codec.EncodeSurfaceID(codec.Domain().SurfaceID("server"), feat)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		codec.DecodeFeature(feat)
	}
}

// BenchmarkFeatureLink measures the full physical-layer round trip for one
// message worth of features.
func BenchmarkFeatureLink(b *testing.B) {
	env := experiments.Environment()
	codec := env.General("it")
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(1))
	msg := gen.Message(env.Corpus.Domain("it").Index, nil)
	feats := codec.EncodeWords(msg.Words)
	link := channel.DefaultFeatureLink(&channel.AWGN{SNRdB: 6, Rng: mat.NewRNG(2)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Send(feats, codec.FeatureDim())
	}
}

// BenchmarkHuffmanPipeline measures the traditional pipeline end to end.
func BenchmarkHuffmanPipeline(b *testing.B) {
	env := experiments.Environment()
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(1))
	msg := gen.Message(env.Corpus.Domain("it").Index, nil)
	text := msg.Text()
	pipe := baseline.Pipeline{
		Huff: env.Huffman,
		Code: channel.Hamming74{},
		Mod:  channel.BPSK{},
		Ch:   &channel.AWGN{SNRdB: 6, Rng: mat.NewRNG(2)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Send(text)
	}
}

// BenchmarkSystemTransmit measures the full Fig.-1 pipeline per message.
func BenchmarkSystemTransmit(b *testing.B) {
	env := experiments.Environment()
	sys, err := core.NewSystem(core.Config{
		Selector:          core.SelectorSticky,
		PinGeneral:        true,
		DisableAutoUpdate: true,
		Pretrained:        env.Generals,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := trace.Generate(sys.Corpus, trace.Config{Users: 2, Messages: 256, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := w.Requests[i%len(w.Requests)]
		if _, err := sys.Transmit(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGradientCompress measures decoder-delta compression.
func BenchmarkGradientCompress(b *testing.B) {
	env := experiments.Environment()
	delta := env.General("it").DecoderParams().Clone()
	opts := nn.CompressOptions{TopKFrac: 0.1, Int8: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cg := nn.Compress(delta, opts)
		cg.Encode()
	}
}

// BenchmarkSelectorSticky measures context-aware selection per message.
func BenchmarkSelectorSticky(b *testing.B) {
	env := experiments.Environment()
	nb := selection.TrainNaiveBayes(env.Corpus, 60, 5)
	s := selection.NewSticky(nb, 0)
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(1))
	msg := gen.Message(0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(msg.Words)
	}
}

// ---------------------------------------------------------------------------
// Serial-versus-parallel benchmarks for the mat compute layer. Each kernel
// runs the same shape at 1 worker and at GOMAXPROCS workers; on a 4+ core
// machine the large shapes should show >= 2x. Results are bit-identical
// across worker counts by construction.

// kernelBenchShapes are the matrix shapes used by the kernel benchmarks:
// one below the parallel cutoff (stays serial either way, measures
// dispatch overhead) and two above it.
var kernelBenchShapes = []struct{ rows, cols int }{
	{128, 128},
	{1024, 1024},
	{4096, 1024},
}

// benchSerialParallel runs fn at 1 worker and at GOMAXPROCS workers.
func benchSerialParallel(b *testing.B, bytesPerOp int64, fn func(b *testing.B)) {
	prev := mat.Parallelism()
	defer mat.SetParallelism(prev)
	b.Run("serial", func(b *testing.B) {
		mat.SetParallelism(1)
		b.SetBytes(bytesPerOp)
		fn(b)
	})
	b.Run("parallel", func(b *testing.B) {
		mat.SetParallelism(runtime.GOMAXPROCS(0))
		b.SetBytes(bytesPerOp)
		fn(b)
	})
}

// BenchmarkMulVec measures dst = M*x, the encoder/decoder forward kernel.
func BenchmarkMulVec(b *testing.B) {
	for _, sh := range kernelBenchShapes {
		m := mat.NewDense(sh.rows, sh.cols)
		m.Randomize(mat.NewRNG(1), 1)
		x := make([]float64, sh.cols)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		dst := make([]float64, sh.rows)
		b.Run(fmt.Sprintf("%dx%d", sh.rows, sh.cols), func(b *testing.B) {
			benchSerialParallel(b, int64(8*sh.rows*sh.cols), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.MulVec(dst, x)
				}
			})
		})
	}
}

// BenchmarkMulVecT measures dst = Mᵀ*x, the backward input-gradient kernel.
func BenchmarkMulVecT(b *testing.B) {
	for _, sh := range kernelBenchShapes {
		m := mat.NewDense(sh.rows, sh.cols)
		m.Randomize(mat.NewRNG(2), 1)
		x := make([]float64, sh.rows)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		dst := make([]float64, sh.cols)
		b.Run(fmt.Sprintf("%dx%d", sh.rows, sh.cols), func(b *testing.B) {
			benchSerialParallel(b, int64(8*sh.rows*sh.cols), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.MulVecT(dst, x)
				}
			})
		})
	}
}

// BenchmarkAddOuter measures M += a*x*yᵀ, the weight-gradient kernel.
func BenchmarkAddOuter(b *testing.B) {
	for _, sh := range kernelBenchShapes {
		m := mat.NewDense(sh.rows, sh.cols)
		x := make([]float64, sh.rows)
		y := make([]float64, sh.cols)
		for i := range x {
			x[i] = float64(i%9) - 4
		}
		for i := range y {
			y[i] = float64(i%11) - 5
		}
		b.Run(fmt.Sprintf("%dx%d", sh.rows, sh.cols), func(b *testing.B) {
			benchSerialParallel(b, int64(8*sh.rows*sh.cols), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.AddOuter(1e-9, x, y)
				}
			})
		})
	}
}

// BenchmarkBatchEncode measures batch semantic encoding of many messages
// through one codec, serial versus sharded across the worker pool.
func BenchmarkBatchEncode(b *testing.B) {
	env := experiments.Environment()
	codec := env.General("it")
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(1))
	msgs := make([][]string, 0, 256)
	for _, m := range gen.Batch(env.Corpus.Domain("it").Index, 256, nil) {
		msgs = append(msgs, m.Words)
	}
	benchSerialParallel(b, 0, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			codec.DecodeBatch(codec.EncodeBatch(msgs))
		}
	})
}

// BenchmarkEncodeGEMM pits the historical per-vector codec path (one
// MulVec-based encode and decode per token) against the batched GEMM path
// (all tokens of a message packed into one matrix, one fused GEMM per
// layer, zero steady-state allocations) on the same 1024-token stream.
// Outputs are bit-identical; only the schedule differs.
func BenchmarkEncodeGEMM(b *testing.B) {
	env := experiments.Environment()
	codec := env.General("it")
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(7))
	var words []string
	for len(words) < 1024 {
		words = append(words, gen.Message(env.Corpus.Domain("it").Index, nil).Words...)
	}
	words = words[:1024]
	ids := make([]int, len(words))
	for i, w := range words {
		ids[i] = codec.Domain().SurfaceID(w)
	}
	b.Run("pervector", func(b *testing.B) {
		feat := make([]float64, codec.FeatureDim())
		concepts := make([]int, len(words))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for t, id := range ids {
				codec.EncodeSurfaceID(id, feat)
				concepts[t] = codec.DecodeFeature(feat)
			}
		}
		b.ReportMetric(float64(len(words)), "tokens/op")
	})
	b.Run("gemm", func(b *testing.B) {
		sc := mat.GetScratch()
		defer mat.PutScratch(sc)
		concepts := make([]int, len(words))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc.Reset()
			feats := codec.EncodeWordsInto(sc, words)
			codec.DecodeFeaturesInto(sc, feats, concepts)
		}
		b.ReportMetric(float64(len(words)), "tokens/op")
	})
	// The raw kernel contrast at the decoder output-layer shape (the
	// dominant GEMM of the serve path), without the tanh/argmax floor the
	// full pipeline shares: one MulVec per token versus one blocked GEMM
	// over all tokens.
	const tokens, hidden, concepts = 1024, 24, 59
	w := mat.NewDense(concepts, hidden)
	w.Randomize(mat.NewRNG(3), 1)
	x := mat.NewDense(tokens, hidden)
	x.Randomize(mat.NewRNG(4), 1)
	out := mat.NewDense(tokens, concepts)
	// The seed kernel: one accumulator chain per output element, no
	// interleaving. Every madd waits on the previous add, so this is
	// FP-add-latency-bound — the floor the blocked kernels escape.
	b.Run("kernel/serialchain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for t := 0; t < tokens; t++ {
				xr := x.Row(t)
				or := out.Row(t)
				for r := 0; r < concepts; r++ {
					row := w.Row(r)
					s := 0.0
					for j, wv := range row {
						s += wv * xr[j]
					}
					or[r] = s
				}
			}
		}
	})
	b.Run("kernel/pervector", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for t := 0; t < tokens; t++ {
				w.MulVec(out.Row(t), x.Row(t))
			}
		}
	})
	b.Run("kernel/gemm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MulMatT(out, x, w)
		}
	})
	// The kernel tiers over the full batched pipeline: tier/f64 repeats the
	// gemm leg through the tier dispatcher (bit-identical to it), tier/f32
	// and tier/int8 trade the documented accuracy budget for speed.
	for _, tier := range semantic.Tiers() {
		b.Run("tier/"+tier.String(), func(b *testing.B) {
			tc := codec.Clone()
			if err := tc.SetTier(tier); err != nil {
				b.Fatal(err)
			}
			sc := mat.GetScratch()
			defer mat.PutScratch(sc)
			concepts := make([]int, len(words))
			// Build the reduced-precision shadow before timing starts.
			tc.DecodeFeaturesInto(sc, tc.EncodeWordsInto(sc, words), concepts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Reset()
				feats := tc.EncodeWordsInto(sc, words)
				tc.DecodeFeaturesInto(sc, feats, concepts)
			}
			b.ReportMetric(float64(len(words)), "tokens/op")
		})
	}
}

// BenchmarkTierGEMM contrasts the three kernel tiers at the decoder
// output-layer shape (the dominant GEMM of the serve path): the bit-exact
// f64 reference, the f32 SIMD kernel, and the int8 quantized kernel
// including its per-call activation quantization.
func BenchmarkTierGEMM(b *testing.B) {
	const tokens, hidden, concepts = 1024, 24, 59
	w := mat.NewDense(concepts, hidden)
	w.Randomize(mat.NewRNG(3), 1)
	x := mat.NewDense(tokens, hidden)
	x.Randomize(mat.NewRNG(4), 1)
	out := mat.NewDense(tokens, concepts)
	b.Run("f64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MulMatT(out, x, w)
		}
	})
	w32 := mat.Dense32From(w)
	x32 := mat.Dense32From(x)
	out32 := mat.NewDense32(tokens, concepts)
	b.Run("f32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MulMatT32(out32, x32, w32)
		}
	})
	q := mat.NewQMat8(concepts, hidden)
	codes := make([]uint8, hidden)
	for r := 0; r < concepts; r++ {
		lo, scale, _ := mat.QuantizeRowQ8(codes, w32.Row(r))
		q.SetRow(r, codes, lo, scale)
	}
	sc := mat.GetScratch()
	defer mat.PutScratch(sc)
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sc.Reset()
			mat.MulMatTQ8AddRow(sc, out32, x32, q, nil)
		}
	})
}

// BenchmarkTransmitTiers measures steady-state System.Transmit at each
// serving tier — the end-to-end win users of `edged -tier` actually see,
// with selection, channel simulation and Huffman framing all included.
func BenchmarkTransmitTiers(b *testing.B) {
	env := experiments.Environment()
	for _, tier := range semantic.Tiers() {
		b.Run(tier.String(), func(b *testing.B) {
			sys, err := core.NewSystem(core.Config{
				Selector:          core.SelectorSticky,
				PinGeneral:        true,
				DisableAutoUpdate: true,
				Pretrained:        env.Generals,
				Tier:              tier.String(),
			})
			if err != nil {
				b.Fatal(err)
			}
			w := trace.Generate(sys.Corpus, trace.Config{Users: 2, Messages: 256, Seed: 3})
			for _, r := range w.Requests[:8] { // warm caches and tier shadows
				if _, err := sys.Transmit(r); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Transmit(w.Requests[i%len(w.Requests)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransmitThroughput measures end-to-end System.Transmit message
// throughput: one sequential system versus one independent system per
// processor fed concurrently (the paper's many-users edge-load scenario).
func BenchmarkTransmitThroughput(b *testing.B) {
	env := experiments.Environment()
	newSystem := func() *core.System {
		sys, err := core.NewSystem(core.Config{
			Selector:          core.SelectorSticky,
			PinGeneral:        true,
			DisableAutoUpdate: true,
			Pretrained:        env.Generals,
		})
		if err != nil {
			b.Fatal(err)
		}
		return sys
	}
	b.Run("serial", func(b *testing.B) {
		sys := newSystem()
		w := trace.Generate(sys.Corpus, trace.Config{Users: 2, Messages: 256, Seed: 3})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Transmit(w.Requests[i%len(w.Requests)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		systems := make([]*core.System, workers)
		for i := range systems {
			systems[i] = newSystem()
		}
		w := trace.Generate(systems[0].Corpus, trace.Config{Users: 2, Messages: 256, Seed: 3})
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			sys := systems[int(next.Add(1)-1)%workers]
			i := 0
			for pb.Next() {
				if _, err := sys.Transmit(w.Requests[i%len(w.Requests)]); err != nil {
					// b.Fatal must not run on a RunParallel worker goroutine.
					b.Error(err)
					return
				}
				i++
			}
		})
	})
}

// BenchmarkChannelStage isolates core.System step 3 — the physical
// channel crossing — under concurrent load, contrasting the two
// synchronization schemes the serve path selects between at NewSystem:
// mutex is the serialized shared link (one reseed + crossing at a time
// under a lock — the pre-lock-free PerUserNoise path, and still the
// classic shared-RNG path), pooled is the lock-free stage (each crossing
// checks a private instance out of a channel.LinkPool and reseeds it to
// the message's derived seed). Payloads and seeds are identical and the
// outputs bit-identical; only the synchronization differs, so at 8/32
// users on a multi-core machine the mutex grid convoys while the pooled
// grid scales with GOMAXPROCS.
func BenchmarkChannelStage(b *testing.B) {
	env := experiments.Environment()
	codec := env.General("it")
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(5))
	msg := gen.Message(env.Corpus.Domain("it").Index, nil)
	feats := codec.EncodeWords(msg.Words)
	dim := codec.FeatureDim()
	flat := make([]float64, 0, len(feats)*dim)
	for _, f := range feats {
		flat = append(flat, f...)
	}
	mkLink := func() channel.FeatureLink {
		return channel.DefaultFeatureLink(&channel.AWGN{SNRdB: 12, Rng: mat.NewRNG(0)})
	}
	// opSeed stands in for core's noiseSeed derivation: any per-op unique
	// seed exercises the same reseed + draw work.
	opSeed := func(u, i int) uint64 {
		return (uint64(u)+1)*0x9e3779b97f4a7c15 + uint64(i)
	}

	grid := func(b *testing.B, users int, crossing func(seed uint64, dst []float64)) {
		if users == 1 {
			dst := make([]float64, len(flat))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				crossing(opSeed(0, i), dst)
			}
			return
		}
		p := (users + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
		b.SetParallelism(p)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			u := int(next.Add(1)-1) % users
			dst := make([]float64, len(flat))
			i := 0
			for pb.Next() {
				crossing(opSeed(u, i), dst)
				i++
			}
		})
	}
	for _, users := range []int{1, 8, 32} {
		name := fmt.Sprintf("%duser", users)
		if users > 1 {
			name += "s"
		}
		users := users
		b.Run("mutex/"+name, func(b *testing.B) {
			link := mkLink()
			rs := link.Ch.(channel.NoiseReseeder)
			var mu sync.Mutex
			var ts channel.TxScratch
			grid(b, users, func(seed uint64, dst []float64) {
				mu.Lock()
				rs.ReseedNoise(seed)
				link.SendFlatScratch(&ts, dst, flat)
				mu.Unlock()
			})
		})
		b.Run("pooled/"+name, func(b *testing.B) {
			pool := channel.NewLinkPool(mkLink)
			grid(b, users, func(seed uint64, dst []float64) {
				inst := pool.Get()
				inst.SendSeeded(seed, dst, flat)
				pool.Put(inst)
			})
		})
	}
}

// BenchmarkConcurrentTransmit measures ONE shared System under parallel
// load from distinct users — the serve-path scaling the edged daemon
// relies on. Unlike BenchmarkTransmitThroughput/parallel (one independent
// system per processor), this exercises the per-user sharded state of a
// single deployment, at every batch window in {off, 50µs, 200µs} and
// every user count in {1, 8, 32}. The window-0 cells keep their
// historical names (1user, 8users) so the CI baseline gate keeps
// tracking them; the batched cells are the batching PR's headline: at 32
// users a non-zero window should beat window-0 well past 1.5x. The
// peruser/ cells run the same load in PerUserNoise mode, where the
// channel stage is lock-free on pooled instances — at 8/32 users and
// GOMAXPROCS >= 4 they should beat the classic cells, which still
// serialize every crossing on linkMu.
func BenchmarkConcurrentTransmit(b *testing.B) {
	env := experiments.Environment()
	const maxUsers = 32
	newSystem := func(window time.Duration, perUser bool) *core.System {
		sys, err := core.NewSystem(core.Config{
			Selector:          core.SelectorSticky,
			PinGeneral:        true,
			DisableAutoUpdate: true,
			Pretrained:        env.Generals,
			BatchWindow:       window,
			PerUserNoise:      perUser,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Sender.Prefetch(sys.Corpus.Names()); err != nil {
			b.Fatal(err)
		}
		return sys
	}
	// Pre-generate one deterministic message stream per user.
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(17))
	streams := make([][][]string, maxUsers)
	for u := range streams {
		seq := make([][]string, 64)
		for i := range seq {
			seq[i] = gen.Message((u+i)%len(env.Corpus.Domains), nil).Words
		}
		streams[u] = seq
	}
	serial := func(b *testing.B, sys *core.System) {
		for i := 0; i < b.N; i++ {
			if _, err := sys.TransmitText("u0", streams[0][i%64]); err != nil {
				b.Fatal(err)
			}
		}
	}
	concurrent := func(b *testing.B, sys *core.System, users int) {
		// RunParallel spawns GOMAXPROCS*p goroutines; pick p so at least
		// `users` run, one user each (cycling when there are more).
		p := (users + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
		b.SetParallelism(p)
		var next atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			u := int(next.Add(1)-1) % users
			user := fmt.Sprintf("u%d", u)
			i := 0
			for pb.Next() {
				if _, err := sys.TransmitText(user, streams[u][i%64]); err != nil {
					// b.Fatal must not run on a RunParallel worker goroutine.
					b.Error(err)
					return
				}
				i++
			}
		})
	}
	cells := []struct {
		name    string
		d       time.Duration
		perUser bool
	}{
		{"", 0, false}, // historical names: 1user, 8users, 32users
		{"window50us/", 50 * time.Microsecond, false},
		{"window200us/", 200 * time.Microsecond, false},
		{"peruser/", 0, true}, // lock-free pooled channel stage
		{"peruser/window50us/", 50 * time.Microsecond, true},
	}
	for _, c := range cells {
		for _, users := range []int{1, 8, 32} {
			name := fmt.Sprintf("%s%duser", c.name, users)
			if users > 1 {
				name += "s"
			}
			users := users
			window, perUser := c.d, c.perUser
			b.Run(name, func(b *testing.B) {
				sys := newSystem(window, perUser)
				b.ResetTimer()
				if users == 1 {
					serial(b, sys)
					return
				}
				concurrent(b, sys, users)
			})
		}
	}
}

// BenchmarkCodecFineTune measures one update-process fine-tune (the
// per-buffer cost of the paper's §II-D individual-model update).
func BenchmarkCodecFineTune(b *testing.B) {
	env := experiments.Environment()
	d := env.Corpus.Domain("it")
	gen := corpus.NewGenerator(env.Corpus, mat.NewRNG(1))
	idio := corpus.NewIdiolect(env.Corpus, mat.NewRNG(2), 0.4)
	codec := env.General("it")
	var examples []semantic.Example
	for _, m := range gen.Batch(d.Index, 24, idio) {
		examples = append(examples, semantic.ExamplesFromMessage(d, m)...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fresh := codec.Clone()
		b.StartTimer()
		fresh.FineTune(examples, 3, 0, mat.NewRNG(uint64(i)+1))
	}
}
