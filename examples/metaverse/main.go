// Metaverse: a multi-user session across two edge servers, the scenario
// that motivates the paper. Avatars chat across domains (gaming voice
// chat, entertainment streams, IT support) while the edges cache
// domain-general models, spin up user-specific individual models, and
// synchronize decoder updates — all over a fading radio channel.
//
// Run with: go run ./examples/metaverse
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
	"repro/internal/mat"
	"repro/internal/semantic"
	"repro/internal/trace"
)

func main() {
	fmt.Println("== Metaverse session over semantic 6G edges ==")
	fmt.Println("booting edges and pretraining knowledge bases...")
	sys, err := core.NewSystem(core.Config{
		Selector:        core.SelectorSticky,
		SNRdB:           8,
		Rayleigh:        true, // mobile radio: fading channel
		PinGeneral:      true,
		BufferThreshold: 24,
		Seed:            7,
	})
	if err != nil {
		log.Fatalf("metaverse: %v", err)
	}

	// Six avatars with personal speech styles, topics drifting between
	// gaming, entertainment and IT — a plausible Metaverse mix.
	w := trace.Generate(sys.Corpus, trace.Config{
		Users:            6,
		Messages:         600,
		MeanRunLength:    10,
		IdiolectStrength: 0.35,
		Seed:             7,
	})
	fmt.Printf("running %d messages from %d avatars...\n\n", len(w.Requests), len(w.Users))

	results, err := sys.RunWorkload(w)
	if err != nil {
		log.Fatalf("metaverse: %v", err)
	}

	// Show a short transcript excerpt.
	fmt.Println("transcript excerpt (message 200 onward):")
	for _, r := range results[200:205] {
		fmt.Printf("  [%s -> %s] %q\n", r.Req.User,
			sys.Corpus.Domains[r.SelectedDomain].Name, r.Req.Msg.Text())
		fmt.Printf("      restored as %q (similarity %.2f)\n",
			joinWords(r.RestoredWords), r.Similarity)
	}

	// Session-level report.
	sum, err := core.Summarize(results)
	if err != nil {
		log.Fatalf("metaverse: %v", err)
	}
	fmt.Println("\nsession report:")
	fmt.Printf("  semantic similarity : %.3f mean\n", sum.MeanSimilarity)
	fmt.Printf("  selection accuracy  : %.3f\n", sum.SelectionAccuracy)
	fmt.Printf("  payload             : %.1f B/message\n", sum.MeanPayloadBytes)
	fmt.Printf("  latency             : %.2f ms mean, %.2f ms p95\n",
		ms(sum.MeanLatency), ms(sum.P95Latency))
	fmt.Printf("  individual models   : used on %.0f%% of messages\n", 100*sum.IndividualShare)
	fmt.Printf("  decoder updates     : %d shipped, %d bytes total\n",
		sys.SyncCount(), sys.SyncBytes())
	st := sys.Sender.CacheStats()
	fmt.Printf("  sender cache        : %.1f%% hit rate, %d models resident\n",
		100*st.HitRate(), sys.Sender.Cache().Len())

	// Personalization effect: first versus last 100 messages.
	var early, late float64
	for i := 0; i < 100; i++ {
		early += results[i].Mismatch
		late += results[len(results)-100+i].Mismatch
	}
	fmt.Printf("  semantic mismatch   : %.3f (first 100) -> %.3f (last 100) as avatars personalize\n",
		early/100, late/100)

	streamPoses()
}

// streamPoses demonstrates the §III-B multimodal extension: avatar pose
// vectors (12 dims driven by a 4-dim body model) ride the same physical
// layer through a trained vector semantic codec.
func streamPoses() {
	fmt.Println("\navatar pose streaming (multimodal semantic codec):")
	rng := mat.NewRNG(99)
	mix := mat.NewDense(12, 4)
	mix.Randomize(rng.Split(), 0.6)
	samplePose := func(dst []float64) {
		z := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		mix.MulVec(dst, z)
	}
	train := make([][]float64, 600)
	for i := range train {
		train[i] = make([]float64, 12)
		samplePose(train[i])
	}
	vc := semantic.NewVectorCodec(rng.Split(), 12, 5)
	if _, err := vc.Train(train, 40, 0.02, 0.05, rng.Split()); err != nil {
		log.Fatalf("metaverse: pose codec: %v", err)
	}
	link := channel.FeatureLink{
		Quant: channel.Quantizer{Bits: 6, Lo: -1, Hi: 1},
		Code:  channel.Hamming74{},
		Mod:   channel.BPSK{},
		Ch:    &channel.AWGN{SNRdB: 8, Rng: rng.Split()},
	}
	feat := make([]float64, 5)
	out := make([]float64, 12)
	num, den, bytes := 0.0, 0.0, 0
	const frames = 200
	for i := 0; i < frames; i++ {
		x := make([]float64, 12)
		samplePose(x)
		vc.Encode(feat, x)
		rx, stats := link.Send([][]float64{feat}, 5)
		vc.Decode(out, rx[0])
		for j := range x {
			d := out[j] - x[j]
			num += d * d
			den += x[j] * x[j]
		}
		bytes += stats.PayloadBytes()
	}
	fmt.Printf("  %d pose frames, %.1f B/frame (vs %d B raw float32), NMSE %.4f over an 8 dB channel\n",
		frames, float64(bytes)/frames, 12*4, num/den)
}

func joinWords(words []string) string {
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
