// Quickstart: boot the full semantic edge system, transmit a few messages
// end-to-end (selection -> semantic encoding -> noisy channel -> semantic
// decoding), and print what the receiver restored.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/text"
)

func main() {
	fmt.Println("pretraining domain-specialized general models...")
	t0 := time.Now()
	sys, err := core.NewSystem(core.Config{
		Selector:   core.SelectorSticky, // context-aware model selection
		SNRdB:      10,                  // a noisy but workable channel
		PinGeneral: true,
		Seed:       1,
	})
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}
	fmt.Printf("ready in %v; domains: %v\n\n", time.Since(t0).Round(time.Millisecond), sys.Corpus.Names())

	messages := []struct {
		user string
		text string
	}{
		{"alice", "the server has a kernel bug and the network has latency"},
		{"alice", "the bus is the interface of this hardware"}, // "bus" = interconnect here
		{"bob", "the doctor will scan the patient for an infection"},
		{"bob", "the nurse has the vaccine dose for the patient"},
		{"carol", "the team has a goal in the league and the fans have the victory"},
	}
	for _, m := range messages {
		res, err := sys.TransmitText(m.user, text.Tokenize(m.text))
		if err != nil {
			log.Fatalf("quickstart: transmit: %v", err)
		}
		fmt.Printf("%-6s sent    : %s\n", m.user, m.text)
		fmt.Printf("       domain  : %s (selected by %s model selection)\n",
			sys.Corpus.Domains[res.SelectedDomain].Name, core.SelectorSticky)
		fmt.Printf("       restored: %s\n", text.Join(res.RestoredWords))
		fmt.Printf("       payload : %d bytes   latency: %.2f ms   cache hit: %v\n\n",
			res.PayloadBytes, float64(res.Latency)/float64(time.Millisecond), res.EncCacheHit)
	}

	st := sys.Sender.CacheStats()
	fmt.Printf("sender edge cache: %.0f%% hits, %d models resident\n",
		100*st.HitRate(), sys.Sender.Cache().Len())
}
