// Mobile6G: user mobility and handover between edge servers. A user with
// a personalized individual model moves from edge A to edge B; the
// serving infrastructure migrates the individual model over the backhaul
// so personalization survives the handover, and the example accounts for
// the migration cost against re-learning from scratch.
//
// Run with: go run ./examples/mobile6g
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/corpus"
	"repro/internal/edge"
	"repro/internal/fl"
	"repro/internal/kb"
	"repro/internal/mat"
	"repro/internal/netsim"
	"repro/internal/semantic"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("mobile6g: %v", err)
	}
}

func run() error {
	fmt.Println("== 6G mobility: individual-model handover between edges ==")
	corp := corpus.Build()
	d := corp.Domain("it")
	fmt.Println("pretraining the IT general model...")
	general := semantic.Pretrain(d, corp, semantic.Config{Seed: 3})

	cloud := kb.NewRegistry()
	cloud.Put(&kb.Model{Key: kb.GeneralKey(d.Name, kb.RoleCodec), Version: 1, Codec: general})

	backhaul := netsim.Link{Latency: 15 * time.Millisecond, BandwidthBps: 500e6}
	mkEdge := func(name string) (*edge.Server, error) {
		return edge.New(edge.Config{
			Name:            name,
			CacheCapacity:   1 << 20,
			Uplink:          netsim.Link{Latency: 40 * time.Millisecond, BandwidthBps: 200e6},
			BufferThreshold: 24,
		}, cloud)
	}
	edgeA, err := mkEdge("edge-A")
	if err != nil {
		return err
	}
	edgeB, err := mkEdge("edge-B")
	if err != nil {
		return err
	}

	// Phase 1: the user lives on edge A and personalizes.
	rng := mat.NewRNG(11)
	idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
	gen := corpus.NewGenerator(corp, rng.Split())
	fmt.Println("\nphase 1: user attached to edge-A, personalizing...")
	mismatchAt := func(srv *edge.Server, label string) float64 {
		probe := gen.Batch(d.Index, 40, idio)
		total := 0.0
		for _, m := range probe {
			acq, err := srv.AcquireCodec(d.Name, "u1")
			if err != nil {
				log.Fatal(err)
			}
			var exs []semantic.Example
			exs = append(exs, semantic.ExamplesFromMessage(d, m)...)
			total += 1 - acq.Model.Codec.Evaluate(exs)
		}
		fmt.Printf("  %-28s mismatch %.3f\n", label, total/40)
		return total / 40
	}
	before := mismatchAt(edgeA, "general model on edge-A:")
	for round := 0; round < 4; round++ {
		for i := 0; i < 24; i++ {
			m := gen.Message(d.Index, idio)
			if _, _, err := edgeA.RecordTransaction(nil, d.Name, "u1", m.Words, nil); err != nil {
				return err
			}
		}
		if _, err := edgeA.RunUpdate(d.Name, "u1", fl.UpdateConfig{Epochs: 3, Seed: uint64(round) + 1}); err != nil {
			return err
		}
	}
	after := mismatchAt(edgeA, "personalized on edge-A:")
	fmt.Printf("  personalization gain: %.3f\n", before-after)

	// Phase 2: handover. Export the individual model on edge A, ship it
	// over the backhaul, import on edge B.
	fmt.Println("\nphase 2: user moves; handover edge-A -> edge-B")
	exported, err := edgeA.ExportUserModel(d.Name, "u1")
	if err != nil {
		return err
	}
	transfer := backhaul.TransferTime(exported.SizeBytes())
	fmt.Printf("  migrating %d bytes of individual model: %.2f ms over backhaul\n",
		exported.SizeBytes(), float64(transfer)/float64(time.Millisecond))
	if err := edgeB.ImportUserModel(exported); err != nil {
		return err
	}

	// Phase 3: verify personalization survived the move.
	fmt.Println("\nphase 3: user attached to edge-B")
	afterMove := mismatchAt(edgeB, "migrated model on edge-B:")
	if afterMove > after+0.02 {
		return fmt.Errorf("handover lost personalization: %.3f -> %.3f", after, afterMove)
	}
	fresh := before
	fmt.Printf("\nhandover verdict: migrated mismatch %.3f vs %.3f if restarting from the general model\n",
		afterMove, fresh)
	fmt.Printf("the %.2f ms migration preserved %d update rounds of personalization\n",
		float64(transfer)/float64(time.Millisecond), 4)
	return nil
}
