// Selection: watch the §III-A model-selection policies compete live on an
// ambiguous message stream with drifting topics. Prints rolling selection
// accuracy per policy so the context and reinforcement-learning advantage
// is visible as it develops.
//
// Run with: go run ./examples/selection
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/selection"
	"repro/internal/trace"
)

func main() {
	fmt.Println("== model selection on ambiguous traffic (short messages, topic runs) ==")
	corp := corpus.Build()
	fmt.Println("training the naive Bayes evidence model...")
	nb := selection.TrainNaiveBayes(corp, 150, 5)
	n := len(corp.Domains)

	factories := map[string]func() selection.Selector{
		"static":     func() selection.Selector { return &selection.Static{} },
		"naivebayes": func() selection.Selector { return nb },
		"sticky":     func() selection.Selector { return selection.NewSticky(nb, 0) },
		"qlearn": func() selection.Selector {
			return selection.NewQLearn(nb, n, mat.NewRNG(3))
		},
		"ucb": func() selection.Selector { return selection.NewUCB(nb, n) },
	}
	order := []string{"static", "naivebayes", "sticky", "qlearn", "ucb"}

	w := trace.Generate(corp, trace.Config{
		Users: 4, Messages: 4000,
		MinLen: 3, MaxLen: 6, FuncProb: 0.55,
		MeanRunLength: 12, Seed: 17,
	})
	fmt.Printf("streaming %d messages from %d users\n\n", len(w.Requests), len(w.Users))

	perUser := map[string]*selection.PerUser{}
	correct := map[string]int{}
	window := map[string]int{}
	for _, name := range order {
		perUser[name] = selection.NewPerUser(factories[name])
	}

	const reportEvery = 800
	fmt.Printf("%-10s", "msgs")
	for _, name := range order {
		fmt.Printf(" %12s", name)
	}
	fmt.Println()
	for i, r := range w.Requests {
		for _, name := range order {
			sel := perUser[name].For(r.User)
			got := sel.Select(r.Msg.Words)
			if got == r.Msg.DomainIndex {
				correct[name]++
				window[name]++
				sel.Feedback(1)
			} else {
				sel.Feedback(0)
			}
		}
		if (i+1)%reportEvery == 0 {
			fmt.Printf("%-10d", i+1)
			for _, name := range order {
				fmt.Printf(" %11.1f%%", 100*float64(window[name])/float64(reportEvery))
				window[name] = 0
			}
			fmt.Println()
		}
	}

	fmt.Println("\noverall accuracy:")
	for _, name := range order {
		fmt.Printf("  %-12s %.1f%%\n", name, 100*float64(correct[name])/float64(len(w.Requests)))
	}
	if correct["sticky"] <= correct["naivebayes"] {
		log.Fatal("selection example: context-aware policy failed to beat per-message classification")
	}
	fmt.Println("\ncontext-aware and RL policies exploit topic persistence that per-message")
	fmt.Println("classification cannot see — the paper's §III-A research direction.")
}
