// Federated: the future-work extension of the paper's §II-D — many users'
// individual-model improvements are aggregated (FedAvg) back into the
// domain-general model, so a brand-new user cold-starts from a model that
// already understands the population's rare vocabulary.
//
// Run with: go run ./examples/federated
package main

import (
	"fmt"
	"log"

	"repro/internal/corpus"
	"repro/internal/fl"
	"repro/internal/mat"
	"repro/internal/semantic"
)

func main() {
	if err := run(); err != nil {
		log.Fatalf("federated: %v", err)
	}
}

func run() error {
	fmt.Println("== FedAvg: folding individual models back into the general model ==")
	corp := corpus.Build()
	d := corp.Domain("medical")
	fmt.Println("pretraining the medical general model...")
	general := semantic.Pretrain(d, corp, semantic.Config{Seed: 5})
	rng := mat.NewRNG(42)

	// Ten donor users, each with a personal vocabulary, contribute local
	// traffic. Their raw text never leaves their edge — only model deltas.
	const donorCount = 10
	donors := make([][]semantic.Example, donorCount)
	for i := range donors {
		idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
		gen := corpus.NewGenerator(corp, rng.Split())
		var exs []semantic.Example
		for _, m := range gen.Batch(d.Index, 48, idio) {
			exs = append(exs, semantic.ExamplesFromMessage(d, m)...)
		}
		donors[i] = exs
	}
	fmt.Printf("federating %d donors x 4 rounds...\n", donorCount)
	improved, err := fl.RunFederated(general, donors, fl.FederatedConfig{
		Rounds: 4, LocalEpochs: 2, Seed: 7,
	})
	if err != nil {
		return err
	}

	// Evaluate cold start for fresh users nobody has seen.
	fmt.Println("\ncold-start evaluation (5 brand-new users with unseen idiolects):")
	var stockSum, fedSum float64
	const probes = 5
	for p := 0; p < probes; p++ {
		idio := corpus.NewIdiolect(corp, rng.Split(), 0.5)
		gen := corpus.NewGenerator(corp, rng.Split())
		var cold []semantic.Example
		for _, m := range gen.Batch(d.Index, 40, idio) {
			cold = append(cold, semantic.ExamplesFromMessage(d, m)...)
		}
		s := general.Evaluate(cold)
		f := improved.Evaluate(cold)
		stockSum += s
		fedSum += f
		fmt.Printf("  user %d: stock %.3f -> fedavg %.3f\n", p+1, s, f)
	}
	fmt.Printf("\nmean cold-start accuracy: %.3f (stock) -> %.3f (fedavg)\n",
		stockSum/probes, fedSum/probes)
	if fedSum <= stockSum {
		return fmt.Errorf("fedavg failed to improve cold start")
	}
	fmt.Println("new users inherit the population's vocabulary without any user's")
	fmt.Println("messages leaving its edge — the FL promise the paper references.")
	return nil
}
